package dycore

import (
	"math"
	"sync"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// Engine integrates the nonhydrostatic equations. Two instantiations
// exist behind this interface: the double-precision reference and the
// mixed-precision build, which demotes the precision-insensitive
// advective work arrays to float32 while keeping pressure-gradient and
// gravity terms — and the accumulated tracer mass flux — in float64
// (§3.4.2).
type Engine interface {
	// Step advances the state by one dynamics timestep (HEVI: 3-stage
	// explicit horizontal Runge-Kutta + implicit vertical solve).
	Step(dt float64)
	// State returns the prognostic state (always float64 storage).
	State() *State
	// Mode reports the precision configuration.
	Mode() precision.Mode
	// MassFluxAccum returns the edge mass flux accumulated in double
	// precision since the last reset, for the tracer transport
	// sub-cycling (the one term of the tracer equation that must stay
	// FP64 — §3.4.2). Units: Pa m/s, summed over accumulated steps.
	MassFluxAccum() []float64
	// AccumSteps returns how many dynamics steps are in the accumulator.
	AccumSteps() int
	// ResetMassFluxAccum zeroes the accumulator.
	ResetMassFluxAccum()
	// VorticityAtLevel diagnoses relative vorticity at dual vertices.
	VorticityAtLevel(k int) []float64
	// ApplyHeating adds a potential-temperature tendency from a heating
	// rate Q1 (K/s of temperature), cell-major [c*NLev+k], over dt.
	ApplyHeating(q1 []float64, dt float64)
	// SetOwned restricts computation to the given entity sets for
	// distributed runs (nil resets to serial full-mesh operation). The
	// Start/Finish hooks run around every internal stage boundary so
	// the driver can refresh halos, overlapping interior compute with
	// the in-flight exchange.
	SetOwned(o *OwnedSets)
	// SetHostParallelism runs the entity loops across n host workers
	// (shared-memory OpenMP analog; 0/1 = serial, negative = all CPUs).
	SetHostParallelism(n int)
	// EnableHyperdiffusion replaces the del^2 closure with scale-
	// selective del^4 (serial engines only).
	EnableHyperdiffusion()
	// SetTelemetry attaches a flight recorder: every Step emits a
	// dyn_step span enclosing the stage phases (halo_start, interior,
	// halo_finish, boundary, implicit_vertical), attributed to rank. A
	// nil recorder detaches.
	SetTelemetry(rec *telemetry.Recorder, rank int32)
	// SetTelemetryStep stamps subsequent spans with an explicit model
	// step (> 0). Distributed runners call it before each Step so every
	// rank's spans carry its own step counter — the recorder's shared
	// SetStep cannot attribute ranks that advance independently. Zero
	// restores the shared-step behavior of the serial drivers.
	SetTelemetryStep(step int64)
}

// OwnedSets describes one rank's share of the mesh for distributed runs:
// TendCells receive prognostic updates (owned cells); DiagCells
// additionally include the one-ring halo, where diagnostic quantities
// (density, pressure, kinetic energy) must be valid; FluxEdges are the
// edges of owned cells, where mass fluxes are formed; UEdges are the
// owned edges whose normal velocity this rank advances.
//
// Start and Finish bracket the halo refresh at each stage boundary:
// Start must snapshot the just-updated owned values and post the
// exchange (it may equally perform the whole blocking round), Finish
// completes a round posted by Start (nil when Start blocks). The engine
// runs Start → interior compute → Finish → boundary compute, with the
// interior/boundary partition derived from the entity sets and the mesh
// one-ring, so an overlap-capable exchange layer hides the round-trip
// behind the interior work.
type OwnedSets struct {
	TendCells []int32
	DiagCells []int32
	FluxEdges []int32
	UEdges    []int32
	Start     func()
	Finish    func()
}

// New creates an Engine over the mesh with nlev layers in the given
// precision mode.
func New(m *mesh.Mesh, nlev int, mode precision.Mode) Engine {
	s := NewState(m, nlev)
	return NewFromState(s, mode)
}

// NewFromState wraps an existing state in an Engine.
func NewFromState(s *State, mode precision.Mode) Engine {
	if mode == precision.Mixed {
		return newEngine[float32](s, mode)
	}
	return newEngine[float64](s, mode)
}

// engine is the generic integrator; T is the working precision of the
// insensitive terms.
type engine[T precision.Real] struct {
	s    *State
	mode precision.Mode

	// Active sets for distributed runs; nil means every entity. split
	// is the derived interior/boundary partition of the stage loops
	// (nil when no entity sets are configured).
	owned *OwnedSets
	split *splitSets

	// Host worker count for shared-memory parallel loops (<=1: serial).
	workers int

	// Optional flight recorder for Step phase spans (nil: disabled).
	// telStep > 0 stamps spans with an explicit per-rank step.
	rec     *telemetry.Recorder
	telRank int32
	telStep int64

	// Work arrays in switchable precision T (advective terms, kinetic
	// energy, vorticity, tangential winds — the insensitive terms).
	massEdge  []T // reconstructed delta-pi at edges
	thetaEdge []T // reconstructed theta at edges
	flux      []T // delta-pi * u at edges
	ke        []T // kinetic energy at cells
	zeta      []T // relative vorticity at dual vertices
	vtan      []T // TRiSK tangential velocity at edges
	rrr       []T // reciprocal density (specific volume) per cell/level

	// Sensitive diagnostics kept in float64 (pressure gradient, gravity).
	pres  []float64 // full nonhydrostatic layer pressure
	exner []float64 // Exner function per layer
	pmid  []float64 // dry-mass mid-layer pressure (pi)

	// Tendencies (always float64 accumulation).
	dMass  []float64
	dTheta []float64
	dU     []float64

	// Double-precision accumulated mass flux for tracer transport.
	massFluxAcc []float64
	accumSteps  int

	// RK3 stage-zero state (reused across steps to avoid per-step
	// allocation).
	saveMass, saveTheta, saveU []float64

	// implicitPool recycles the column-solve scratch of implicitVertical
	// across goroutines and steps (constructor set in newEngine).
	implicitPool sync.Pool

	// Horizontal diffusion coefficients, scaled with mesh spacing at
	// construction: nu is the del^2 background, nu4 the optional
	// scale-selective del^4 (enabled by EnableHyperdiffusion).
	nu  float64
	nu4 float64

	// lapU holds the vector Laplacian of u when hyperdiffusion is on.
	lapU []float64
}

func newEngine[T precision.Real](s *State, mode precision.Mode) *engine[T] {
	m := s.M
	nlev := s.NLev
	e := &engine[T]{
		s:    s,
		mode: mode,

		massEdge:  make([]T, m.NEdges*nlev),
		thetaEdge: make([]T, m.NEdges*nlev),
		flux:      make([]T, m.NEdges*nlev),
		ke:        make([]T, m.NCells*nlev),
		zeta:      make([]T, m.NVerts*nlev),
		vtan:      make([]T, m.NEdges*nlev),
		rrr:       make([]T, m.NCells*nlev),

		pres:  make([]float64, m.NCells*nlev),
		exner: make([]float64, m.NCells*nlev),
		pmid:  make([]float64, m.NCells*nlev),

		dMass:  make([]float64, m.NCells*nlev),
		dTheta: make([]float64, m.NCells*nlev),
		dU:     make([]float64, m.NEdges*nlev),

		massFluxAcc: make([]float64, m.NEdges*nlev),

		saveMass:  make([]float64, m.NCells*nlev),
		saveTheta: make([]float64, m.NCells*nlev),
		saveU:     make([]float64, m.NEdges*nlev),
	}
	e.implicitPool.New = newImplicitScratch(nlev)
	// Scale-selective damping: nu ~ dx^2 / tau with tau ~ 2h.
	meanDx := meanEdgeLength(m)
	e.nu = meanDx * meanDx / 7200.0
	return e
}

func meanEdgeLength(m *mesh.Mesh) float64 {
	var s float64
	for e := 0; e < m.NEdges; e++ {
		s += m.DcEdge[e]
	}
	return s / float64(m.NEdges)
}

func (e *engine[T]) State() *State            { return e.s }
func (e *engine[T]) Mode() precision.Mode     { return e.mode }
func (e *engine[T]) MassFluxAccum() []float64 { return e.massFluxAcc }
func (e *engine[T]) AccumSteps() int          { return e.accumSteps }

func (e *engine[T]) ResetMassFluxAccum() {
	for i := range e.massFluxAcc {
		e.massFluxAcc[i] = 0
	}
	e.accumSteps = 0
}

func (e *engine[T]) SetTelemetry(rec *telemetry.Recorder, rank int32) {
	e.rec = rec
	e.telRank = rank
}

func (e *engine[T]) SetTelemetryStep(step int64) { e.telStep = step }

// span opens a phase span: with an explicit per-rank step when one was
// stamped (distributed runs), else on the recorder's shared step.
//
//grist:hotpath
func (e *engine[T]) span(name string) telemetry.Span {
	if e.telStep > 0 {
		return e.rec.BeginAt(name, e.telRank, e.telStep)
	}
	return e.rec.Begin(name, e.telRank)
}

func (e *engine[T]) SetOwned(o *OwnedSets) {
	e.owned = o
	e.split = nil
	if o != nil && len(o.DiagCells) > 0 {
		e.split = buildSplit(e.s.M, o)
	}
}

// EnableHyperdiffusion switches the background del^2 closure to a
// scale-selective del^4 hyperdiffusion (the higher-order dissipation
// real GSRMs use: it damps grid-scale noise hard while leaving resolved
// scales nearly untouched). Serial (full-mesh) runs only: the del^4
// stencil spans two rings, beyond the distributed halo.
func (e *engine[T]) EnableHyperdiffusion() {
	if e.owned != nil {
		panic("dycore: hyperdiffusion requires a full-mesh (serial) engine")
	}
	m := e.s.M
	meanDx := meanEdgeLength(m)
	// nu4 ~ dx^4 / tau with tau ~ 2h at the grid scale.
	e.nu4 = meanDx * meanDx * meanDx * meanDx / 7200.0
	e.nu = 0
	e.lapU = make([]float64, m.NEdges*e.s.NLev)
}

func (e *engine[T]) hookStart() {
	if e.owned != nil && e.owned.Start != nil {
		e.owned.Start()
	}
}

func (e *engine[T]) hookFinish() {
	if e.owned != nil && e.owned.Finish != nil {
		e.owned.Finish()
	}
}

// iterate runs f over the given id set, or over [0, n) when ids is nil.
func iterate(ids []int32, n int, f func(int32)) {
	if ids == nil {
		for i := int32(0); i < int32(n); i++ {
			f(i)
		}
		return
	}
	for _, i := range ids {
		f(i)
	}
}

// eachTendCell iterates over cells receiving prognostic updates.
func (e *engine[T]) eachTendCell(f func(c int32)) {
	var ids []int32
	if e.owned != nil {
		ids = e.owned.TendCells
	}
	e.iterateParallel(ids, e.s.M.NCells, f)
}

// eachFluxEdge iterates over edges where mass fluxes are formed.
func (e *engine[T]) eachFluxEdge(f func(ed int32)) {
	var ids []int32
	if e.owned != nil {
		ids = e.owned.FluxEdges
	}
	e.iterateParallel(ids, e.s.M.NEdges, f)
}

// eachUEdge iterates over edges whose velocity this rank advances.
func (e *engine[T]) eachUEdge(f func(ed int32)) {
	var ids []int32
	if e.owned != nil {
		ids = e.owned.UEdges
	}
	e.iterateParallel(ids, e.s.M.NEdges, f)
}

// Step advances one HEVI timestep: Wicker-Skamarock RK3 for the
// horizontal explicit terms, then the vertically-implicit acoustic
// adjustment of (w, phi).
//
// Stage tendencies are evaluated right after the previous stage's state
// update. With a split exchange layer the interior share runs while the
// halo refresh is in flight (Start → interior → Finish → boundary) —
// bit-identical to the blocking order, because Start seals its outbound
// payload before the overlapped compute begins. The vertical solve is
// column-local over owned cells and the mass-flux accumulation reads
// only work arrays, so both also overlap with an in-flight exchange.
//
//grist:hotpath
func (e *engine[T]) Step(dt float64) {
	stepSpan := e.span("dyn_step")
	s := e.s
	copy(e.saveMass, s.DryMass)
	copy(e.saveTheta, s.ThetaM)
	copy(e.saveU, s.U)

	fracs := [3]float64{dt / 3, dt / 2, dt}
	e.computeTendencies(regionAll)
	for si := 0; si < 3; si++ {
		frac := fracs[si]
		e.eachTendCell(func(c int32) {
			for k := 0; k < s.NLev; k++ {
				i := int(c)*s.NLev + k
				s.DryMass[i] = e.saveMass[i] + frac*e.dMass[i]
				s.ThetaM[i] = e.saveTheta[i] + frac*e.dTheta[i]
			}
		})
		e.eachUEdge(func(ed int32) {
			for k := 0; k < s.NLev; k++ {
				i := int(ed)*s.NLev + k
				s.U[i] = e.saveU[i] + frac*e.dU[i]
			}
		})
		if si < 2 {
			sp := e.span("halo_start")
			e.hookStart()
			sp.End()
			sp = e.span("interior")
			e.computeTendencies(regionInterior)
			sp.End()
			sp = e.span("halo_finish")
			e.hookFinish()
			sp.End()
			sp = e.span("boundary")
			e.computeTendencies(regionBoundary)
			sp.End()
		}
	}

	sp := e.span("halo_start")
	e.hookStart()
	sp.End()
	// Accumulate the final-stage mass flux in double precision for the
	// tracer sub-cycling (§3.4.2: delta-pi*V must stay FP64).
	e.eachFluxEdge(func(ed int32) {
		for k := 0; k < s.NLev; k++ {
			i := int(ed)*s.NLev + k
			e.massFluxAcc[i] += float64(e.flux[i])
		}
	})
	e.accumSteps++

	sp = e.span("implicit_vertical")
	e.implicitVertical(dt)
	sp.End()
	sp = e.span("halo_finish")
	e.hookFinish()
	sp.End()
	// Post-implicit refresh: ship the implicitly updated (w, phi).
	e.hookStart()
	e.hookFinish()
	stepSpan.End()
}

// region selects which share of the stage loops to run: everything, the
// exchange-independent interior, or the exchange-dependent boundary.
type region uint8

const (
	regionAll region = iota
	regionInterior
	regionBoundary
)

// stageSets resolves the entity id lists of each kernel for a region
// (nil = every entity; an empty list = none). Without a split partition,
// Interior is the whole domain and Boundary is empty.
func (e *engine[T]) stageSets(reg region) (diag, flux, vert, vtan, tend, u []int32, run bool) {
	if e.split == nil {
		if reg == regionBoundary {
			return nil, nil, nil, nil, nil, nil, false
		}
		if e.owned != nil {
			o := e.owned
			return o.DiagCells, o.FluxEdges, nil, nil, o.TendCells, o.UEdges, true
		}
		return nil, nil, nil, nil, nil, nil, true
	}
	sp := e.split
	switch reg {
	case regionInterior:
		return sp.diagInt, sp.fluxInt, sp.vertInt, sp.vtanInt, sp.tendInt, sp.uInt, true
	case regionBoundary:
		return sp.diagBnd, sp.fluxBnd, sp.vertBnd, sp.vtanBnd, sp.tendBnd, sp.uBnd, true
	default:
		return sp.diagAll, sp.fluxAll, sp.vertAll, sp.vtanAll, sp.tendAll, sp.uAll, true
	}
}

// computeTendencies evaluates the explicit horizontal tendencies of
// delta-pi, Theta and u into dMass, dTheta, dU over the given region.
func (e *engine[T]) computeTendencies(reg region) {
	diag, flux, vert, vtan, tend, u, run := e.stageSets(reg)
	if !run {
		return
	}
	e.computeRRR(diag)
	e.primalNormalFluxEdge(flux)
	e.computeKineticEnergy(diag)
	e.computeVorticity(vert)
	e.tangentialWinds(vtan)

	if e.nu4 > 0 {
		e.vectorLaplacian(e.lapU)
	}
	e.continuityAndThermo(tend)
	e.momentum(u)
}

// computeRRR diagnoses the reciprocal density (specific volume)
// rrr = dphi/dpi per layer, the full nonhydrostatic pressure from the
// equation of state, the Exner function, and the dry mid-layer pressure.
// This is the paper's compute_rrr kernel: it touches many arrays and
// carries pow/division work, and its rrr output is precision-insensitive
// while pressure and Exner stay FP64.
//
//grist:hotpath
func (e *engine[T]) computeRRR(ids []int32) {
	s := e.s
	nlev := s.NLev
	kappa := Rd / Cp
	e.iterateParallel(ids, s.M.NCells, func(c int32) {
		pIface := PTop
		for k := 0; k < nlev; k++ {
			i := int(c)*nlev + k
			dphi := s.Phi[int(c)*(nlev+1)+k] - s.Phi[int(c)*(nlev+1)+k+1]
			dpi := s.DryMass[i]
			e.rrr[i] = T(dphi / dpi)
			theta := s.ThetaM[i] / dpi
			rho := dpi / dphi
			p := P0 * math.Pow(Rd*rho*theta/P0, Gamma)
			e.pres[i] = p
			e.exner[i] = math.Pow(p/P0, kappa)
			e.pmid[i] = pIface + 0.5*dpi
			pIface += dpi
		}
	})
}

// primalNormalFluxEdge reconstructs delta-pi and theta at edges and forms
// the horizontal mass flux delta-pi*u. The reconstruction blends a
// positivity-friendly harmonic mean with an upwind value weighted by the
// local Courant ratio — the division-heavy structure that makes this
// kernel profit from single precision on CPEs (Fig. 9).
//
//grist:hotpath
func (e *engine[T]) primalNormalFluxEdge(ids []int32) {
	s := e.s
	m := s.M
	nlev := s.NLev
	e.iterateParallel(ids, m.NEdges, func(ed int32) {
		c0, c1 := m.EdgeCell[ed][0], m.EdgeCell[ed][1]
		uStar := T(10.0) // blending velocity scale, m/s
		for k := 0; k < nlev; k++ {
			i := int(ed)*nlev + k
			m0 := T(s.DryMass[int(c0)*nlev+k])
			m1 := T(s.DryMass[int(c1)*nlev+k])
			t0 := T(s.ThetaM[int(c0)*nlev+k]) / m0
			t1 := T(s.ThetaM[int(c1)*nlev+k]) / m1
			u := T(s.U[i])
			au := u
			if au < 0 {
				au = -au
			}
			// Upwind weight rises with |u|.
			wUp := au / (au + uStar)
			// Harmonic mean (centered, positivity-friendly).
			hm := 2 * m0 * m1 / (m0 + m1)
			var up, tup T
			if u >= 0 {
				up, tup = m0, t0
			} else {
				up, tup = m1, t1
			}
			me := (1-wUp)*hm + wUp*up
			te := (1-wUp)*(0.5*(t0+t1)) + wUp*tup
			e.massEdge[i] = me
			e.thetaEdge[i] = te
			e.flux[i] = me * u
		}
	})
}

// computeKineticEnergy evaluates cell kinetic energy from the edge-normal
// winds (MPAS/TRiSK form): KE_c = (1/A_c) sum_e (Dv*Dc/4) u_e^2.
//
//grist:hotpath
func (e *engine[T]) computeKineticEnergy(ids []int32) {
	s := e.s
	m := s.M
	nlev := s.NLev
	e.iterateParallel(ids, m.NCells, func(c int32) {
		inv := T(1.0 / m.CellArea[c])
		for k := 0; k < nlev; k++ {
			e.ke[int(c)*nlev+k] = 0
		}
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			ed := m.CellEdge[kk]
			w := T(0.25 * m.DvEdge[ed] * m.DcEdge[ed])
			for k := 0; k < nlev; k++ {
				u := T(s.U[int(ed)*nlev+k])
				e.ke[int(c)*nlev+k] += w * u * u * inv
			}
		}
	})
}

// computeVorticity evaluates relative vorticity at dual vertices.
//
//grist:hotpath
func (e *engine[T]) computeVorticity(ids []int32) {
	s := e.s
	m := s.M
	nlev := s.NLev
	e.iterateParallel(ids, m.NVerts, func(v int32) {
		inv := T(1.0 / m.VertArea[v])
		for k := 0; k < nlev; k++ {
			var acc T
			for j := 0; j < 3; j++ {
				ed := m.VertEdge[v][j]
				acc += T(m.VertEdgeSign[v][j]) * T(s.U[int(ed)*nlev+k]) * T(m.DcEdge[ed])
			}
			e.zeta[int(v)*nlev+k] = acc * inv
		}
	})
}

// continuityAndThermo forms the divergence tendencies of dry mass and
// mass-weighted potential temperature from the edge fluxes.
//
//grist:hotpath
func (e *engine[T]) continuityAndThermo(ids []int32) {
	s := e.s
	m := s.M
	nlev := s.NLev
	e.iterateParallel(ids, m.NCells, func(c int32) {
		inv := 1.0 / m.CellArea[c]
		for k := 0; k < nlev; k++ {
			e.dMass[int(c)*nlev+k] = 0
			e.dTheta[int(c)*nlev+k] = 0
		}
		for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
			ed := m.CellEdge[kk]
			sign := float64(m.CellEdgeSign[kk]) * m.DvEdge[ed] * inv
			for k := 0; k < nlev; k++ {
				f := float64(e.flux[int(ed)*nlev+k])
				e.dMass[int(c)*nlev+k] -= sign * f
				e.dTheta[int(c)*nlev+k] -= sign * f * float64(e.thetaEdge[int(ed)*nlev+k])
			}
		}
	})
}

// vectorLaplacian evaluates the TRiSK vector Laplacian of the current
// normal winds into dst: L(u)_e = grad(div u)_e - curl(zeta)_e. The
// divergence comes from divAt; the vorticity from the zeta work array
// (assumed fresh from computeVorticity).
//
//grist:hotpath
func (e *engine[T]) vectorLaplacian(dst []float64) {
	s := e.s
	m := s.M
	nlev := s.NLev
	e.parallelFor(m.NEdges, func(lo, hi int) {
		for ed := lo; ed < hi; ed++ {
			c0, c1 := m.EdgeCell[ed][0], m.EdgeCell[ed][1]
			v0, v1 := m.EdgeVert[ed][0], m.EdgeVert[ed][1]
			invDc := 1.0 / m.DcEdge[ed]
			invDv := 1.0 / m.DvEdge[ed]
			for k := 0; k < nlev; k++ {
				dst[ed*nlev+k] = (e.divAt(c1, k)-e.divAt(c0, k))*invDc -
					(float64(e.zeta[int(v1)*nlev+k])-float64(e.zeta[int(v0)*nlev+k]))*invDv
			}
		}
	})
}

// lapOfField computes div/curl of an arbitrary edge field (for the
// second application of the Laplacian in del^4). The div/curl loops are
// written out flat: this runs per (edge, level) inside momentum, and
// per-call closures here would be heap traffic in the hottest loop of
// the hyperdiffusion path.
//
//grist:hotpath
func (e *engine[T]) lapOfField(u []float64, ed int32, k int) float64 {
	m := e.s.M
	nlev := e.s.NLev
	c0, c1 := m.EdgeCell[ed][0], m.EdgeCell[ed][1]
	v0, v1 := m.EdgeVert[ed][0], m.EdgeVert[ed][1]
	var div0, div1 float64
	for kk := m.CellOff[c0]; kk < m.CellOff[c0+1]; kk++ {
		ee := m.CellEdge[kk]
		div0 += float64(m.CellEdgeSign[kk]) * u[int(ee)*nlev+k] * m.DvEdge[ee]
	}
	div0 /= m.CellArea[c0]
	for kk := m.CellOff[c1]; kk < m.CellOff[c1+1]; kk++ {
		ee := m.CellEdge[kk]
		div1 += float64(m.CellEdgeSign[kk]) * u[int(ee)*nlev+k] * m.DvEdge[ee]
	}
	div1 /= m.CellArea[c1]
	var curl0, curl1 float64
	for j := 0; j < 3; j++ {
		e0 := m.VertEdge[v0][j]
		curl0 += float64(m.VertEdgeSign[v0][j]) * u[int(e0)*nlev+k] * m.DcEdge[e0]
		e1 := m.VertEdge[v1][j]
		curl1 += float64(m.VertEdgeSign[v1][j]) * u[int(e1)*nlev+k] * m.DcEdge[e1]
	}
	curl0 /= m.VertArea[v0]
	curl1 /= m.VertArea[v1]
	return (div1-div0)/m.DcEdge[ed] - (curl1-curl0)/m.DvEdge[ed]
}

// momentum assembles the edge-normal velocity tendency:
// Coriolis + vorticity flux (insensitive, T), kinetic-energy gradient
// (insensitive, T), pressure-gradient force (sensitive, float64), and
// scale-selective diffusion.
//
//grist:hotpath
func (e *engine[T]) momentum(ids []int32) {
	s := e.s
	m := s.M
	nlev := s.NLev

	e.iterateParallel(ids, m.NEdges, func(ed int32) {
		c0, c1 := m.EdgeCell[ed][0], m.EdgeCell[ed][1]
		v0, v1 := m.EdgeVert[ed][0], m.EdgeVert[ed][1]
		invDc := 1.0 / m.DcEdge[ed]
		invDv := 1.0 / m.DvEdge[ed]
		f := 2 * Omega * math.Sin(m.EdgeLat[ed])
		for k := 0; k < nlev; k++ {
			i := int(ed)*nlev + k

			// CalcCoriolisTerm: (f + zeta_e) * v_tangential.
			zetaE := 0.5 * (float64(e.zeta[int(v0)*nlev+k]) + float64(e.zeta[int(v1)*nlev+k]))
			cor := (f + zetaE) * float64(e.vtan[i])

			// TendGradKEAtEdge (Fig. 4 of the paper).
			gradKE := (float64(e.ke[int(c1)*nlev+k]) - float64(e.ke[int(c0)*nlev+k])) * invDc

			// Pressure-gradient force, FP64 (precision-sensitive):
			// -grad(phi_mid - phi_ref(pi)) - rrr * grad(p - pi).
			// Subtracting the hydrostatic reference profile phi_ref
			// removes the two-large-terms cancellation error of
			// terrain-following coordinates over steep orography (the
			// cells of one level sit at different dry pressures there).
			phm0 := 0.5*(s.Phi[int(c0)*(nlev+1)+k]+s.Phi[int(c0)*(nlev+1)+k+1]) -
				refPhi(e.pmid[int(c0)*nlev+k])
			phm1 := 0.5*(s.Phi[int(c1)*(nlev+1)+k]+s.Phi[int(c1)*(nlev+1)+k+1]) -
				refPhi(e.pmid[int(c1)*nlev+k])
			rrrE := 0.5 * (float64(e.rrr[int(c0)*nlev+k]) + float64(e.rrr[int(c1)*nlev+k]))
			pgf := (phm1 - phm0 + rrrE*((e.pres[int(c1)*nlev+k]-e.pmid[int(c1)*nlev+k])-
				(e.pres[int(c0)*nlev+k]-e.pmid[int(c0)*nlev+k]))) * invDc

			// Scale-selective diffusion (insensitive): del^2 background
			// or del^4 hyperdiffusion when enabled (note the sign flip:
			// -nu4 * L(L(u)) damps).
			var lap float64
			if e.nu4 > 0 {
				lap = -e.nu4 * e.lapOfField(e.lapU, ed, k)
			} else {
				lap = e.nu * ((e.divAt(c1, k)-e.divAt(c0, k))*invDc -
					(float64(e.zeta[int(v1)*nlev+k])-float64(e.zeta[int(v0)*nlev+k]))*invDv)
			}

			// Model-top sponge: Rayleigh damping of the winds in the
			// top layers absorbs upward-propagating waves instead of
			// reflecting them off the rigid lid.
			sponge := spongeRate(k, nlev) * s.U[i]

			e.dU[i] = cor - gradKE - pgf + lap - sponge
		}
	})
}

// spongeRate returns the Rayleigh damping rate (1/s) of the model-top
// sponge layer: zero below the top two layers, ramping to 1/(10 min) at
// the uppermost layer.
func spongeRate(k, nlev int) float64 {
	depth := 2
	if nlev < 6 {
		depth = 1
	}
	if k >= depth {
		return 0
	}
	frac := float64(depth-k) / float64(depth)
	return frac / 600.0
}

// refPhi is the hydrostatic reference geopotential of an isothermal
// 288 K atmosphere at dry pressure pi, used to precondition the
// pressure-gradient force over terrain.
func refPhi(pi float64) float64 {
	return Rd * 288.0 * math.Log(P0/pi)
}

// divAt returns the velocity divergence at (cell, level) from the current
// normal winds (used by the diffusion term).
//
//grist:hotpath
func (e *engine[T]) divAt(c int32, k int) float64 {
	s := e.s
	m := s.M
	nlev := s.NLev
	var acc float64
	for kk := m.CellOff[c]; kk < m.CellOff[c+1]; kk++ {
		ed := m.CellEdge[kk]
		acc += float64(m.CellEdgeSign[kk]) * s.U[int(ed)*nlev+k] * m.DvEdge[ed]
	}
	return acc / m.CellArea[c]
}

// VorticityAtLevel diagnoses relative vorticity (float64) at dual
// vertices for level k — one of the two mixed-precision observation
// points of §3.4.1.
func (e *engine[T]) VorticityAtLevel(k int) []float64 {
	s := e.s
	m := s.M
	nlev := s.NLev
	out := make([]float64, m.NVerts)
	for v := 0; v < m.NVerts; v++ {
		var acc float64
		for j := 0; j < 3; j++ {
			ed := m.VertEdge[v][j]
			acc += float64(m.VertEdgeSign[v][j]) * s.U[int(ed)*nlev+k] * m.DcEdge[ed]
		}
		out[v] = acc / m.VertArea[v]
	}
	return out
}

// ApplyHeating converts a temperature heating rate Q1 (K/s) into a
// potential-temperature tendency and integrates it over dt.
func (e *engine[T]) ApplyHeating(q1 []float64, dt float64) {
	s := e.s
	nlev := s.NLev
	var diag []int32
	if e.owned != nil {
		diag = e.owned.DiagCells
	}
	e.computeRRR(diag) // refresh Exner
	e.eachTendCell(func(c int32) {
		for k := 0; k < nlev; k++ {
			i := int(c)*nlev + k
			s.ThetaM[i] += dt * s.DryMass[i] * q1[i] / e.exner[i]
		}
	})
}
