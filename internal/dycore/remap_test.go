package dycore

import (
	"math"
	"math/rand"
	"testing"

	"gristgo/internal/precision"
	"gristgo/internal/tracer"
)

// deformColumns perturbs layer thicknesses non-uniformly (as a long
// Lagrangian integration would) while keeping intensive values coherent.
func deformColumns(s *State, tr *tracer.Field, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nlev := s.NLev
	for c := 0; c < s.M.NCells; c++ {
		base := c * nlev
		for k := 0; k < nlev; k++ {
			theta := s.ThetaM[base+k] / s.DryMass[base+k]
			var q [tracer.NumSpecies]float64
			for t := range q {
				q[t] = tr.Q[t][base+k] / tr.Mass[base+k]
			}
			f := 0.6 + 0.8*rng.Float64()
			s.DryMass[base+k] *= f
			s.ThetaM[base+k] = s.DryMass[base+k] * theta
			tr.Mass[base+k] = s.DryMass[base+k]
			for t := range q {
				tr.Q[t][base+k] = q[t] * tr.Mass[base+k]
			}
		}
	}
}

func TestVerticalRemapConservation(t *testing.T) {
	m := testMesh(t, 2)
	nlev := 10
	s := NewState(m, nlev)
	s.IsothermalRest(290)
	tr := tracer.NewField(m, nlev, s.DryMass)
	for c := 0; c < m.NCells; c++ {
		for k := 0; k < nlev; k++ {
			tr.SetMixingRatio(tracer.QV, c, k, 0.001*float64(k+1))
			tr.SetMixingRatio(tracer.QC, c, k, 1e-5*float64(c%7))
		}
	}
	deformColumns(s, tr, 5)

	mass0 := s.GlobalDryMass()
	qv0 := tr.GlobalTracerMass(tracer.QV)
	qc0 := tr.GlobalTracerMass(tracer.QC)
	var theta0 float64
	for i := range s.ThetaM {
		theta0 += s.ThetaM[i]
	}

	VerticalRemap(s, tr)

	if rel := math.Abs(s.GlobalDryMass()-mass0) / mass0; rel > 1e-12 {
		t.Errorf("dry mass changed by %g", rel)
	}
	if rel := math.Abs(tr.GlobalTracerMass(tracer.QV)-qv0) / qv0; rel > 1e-12 {
		t.Errorf("qv mass changed by %g", rel)
	}
	if qc0 > 0 {
		if rel := math.Abs(tr.GlobalTracerMass(tracer.QC)-qc0) / qc0; rel > 1e-12 {
			t.Errorf("qc mass changed by %g", rel)
		}
	}
	var theta1 float64
	for i := range s.ThetaM {
		theta1 += s.ThetaM[i]
	}
	if rel := math.Abs(theta1-theta0) / theta0; rel > 1e-12 {
		t.Errorf("mass-weighted theta changed by %g", rel)
	}

	// Layers are uniform afterwards.
	for c := 0; c < m.NCells; c++ {
		base := c * nlev
		for k := 1; k < nlev; k++ {
			if d := math.Abs(s.DryMass[base+k] - s.DryMass[base]); d > 1e-9 {
				t.Fatalf("cell %d: layers not uniform after remap", c)
			}
		}
	}
}

func TestVerticalRemapIdempotentOnUniform(t *testing.T) {
	m := testMesh(t, 1)
	nlev := 6
	s := NewState(m, nlev)
	s.IsothermalRest(280)
	tr := tracer.NewField(m, nlev, s.DryMass)
	before := append([]float64(nil), s.ThetaM...)
	VerticalRemap(s, tr)
	for i := range before {
		if math.Abs(s.ThetaM[i]-before[i]) > 1e-9*(1+math.Abs(before[i])) {
			t.Fatalf("remap changed a uniform column at %d: %g vs %g", i, s.ThetaM[i], before[i])
		}
	}
}

func TestVerticalRemapPreservesMonotoneProfiles(t *testing.T) {
	// First-order remap must not create new extrema in theta.
	m := testMesh(t, 1)
	nlev := 12
	s := NewState(m, nlev)
	s.IsothermalRest(300) // theta decreasing downward
	tr := tracer.NewField(m, nlev, s.DryMass)
	deformColumns(s, tr, 9)
	// Record column extrema before.
	for c := 0; c < m.NCells; c++ {
		base := c * nlev
		lo, hi := math.Inf(1), math.Inf(-1)
		for k := 0; k < nlev; k++ {
			th := s.ThetaM[base+k] / s.DryMass[base+k]
			lo = math.Min(lo, th)
			hi = math.Max(hi, th)
		}
		VerticalRemapColumnCheck := func() {
			for k := 0; k < nlev; k++ {
				th := s.ThetaM[base+k] / s.DryMass[base+k]
				if th < lo-1e-9 || th > hi+1e-9 {
					t.Fatalf("cell %d: remap created extremum %g outside [%g,%g]", c, th, lo, hi)
				}
			}
		}
		_ = VerticalRemapColumnCheck
		if c == 0 {
			VerticalRemap(s, tr)
		}
		VerticalRemapColumnCheck()
	}
}

func TestRemapThenStepStable(t *testing.T) {
	m := testMesh(t, 2)
	eng := New(m, 8, precision.DP)
	s := eng.State()
	s.InitIdealized(CaseTropicalCyclone)
	tr := tracer.NewField(m, 8, s.DryMass)
	for i := 0; i < 10; i++ {
		eng.Step(90)
		if i%5 == 4 {
			VerticalRemap(s, tr)
		}
	}
	if w := s.MaxWind(); w > 150 || math.IsNaN(w) {
		t.Errorf("unstable after remap cycling: max|u| = %g", w)
	}
}

func TestRemapIntoOverlapLogic(t *testing.T) {
	// Two source layers [0,2],[2,4] with intensive values 1 and 3,
	// remapped to [0,1],[1,3],[3,4].
	srcEdges := []float64{0, 2, 4}
	dstEdges := []float64{0, 1, 3, 4}
	src := []float64{2 * 1, 2 * 3} // mass-weighted
	srcMass := []float64{2, 2}
	dst := make([]float64, 3)
	// remapInto expects len(dst)==len(src); use the general helper
	// directly with mismatched lengths via a local copy of the logic.
	n := len(dst)
	for k := range dst {
		dst[k] = 0
	}
	for di := 0; di < n; di++ {
		lo, hi := dstEdges[di], dstEdges[di+1]
		for j := 0; j < len(src); j++ {
			overlap := math.Min(hi, srcEdges[j+1]) - math.Max(lo, srcEdges[j])
			if overlap <= 0 {
				continue
			}
			dst[di] += src[j] / srcMass[j] * overlap
		}
	}
	want := []float64{1, 1*1 + 1*3, 3}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-12 {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestRemapperRunAllocFree(t *testing.T) {
	m := testMesh(t, 1)
	nlev := 8
	s := NewState(m, nlev)
	s.IsothermalRest(290)
	tr := tracer.NewField(m, nlev, s.DryMass)
	r := NewRemapper(nlev)
	r.Run(s, tr) // warm up
	allocs := testing.AllocsPerRun(10, func() {
		r.Run(s, tr)
	})
	if allocs > 0 {
		t.Errorf("Remapper.Run allocates %.1f times per call; want 0", allocs)
	}
}
