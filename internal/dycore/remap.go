package dycore

import "gristgo/internal/tracer"

// Remapper performs the vertical remap with preallocated column scratch,
// so the periodic remap inside the model step costs zero steady-state
// allocations (guarded by TestRemapperRunAllocFree). Construct one per
// (state, tracer) shape with NewRemapper and call Run each remap
// interval; the one-shot VerticalRemap wrapper remains for callers that
// remap rarely enough not to care.
type Remapper struct {
	srcEdges, dstEdges []float64
	thetaNew, wNew     []float64
	wMid               []float64
	qNew               [tracer.NumSpecies][]float64
}

// NewRemapper allocates scratch for columns of nlev layers.
func NewRemapper(nlev int) *Remapper {
	r := &Remapper{
		srcEdges: make([]float64, nlev+1),
		dstEdges: make([]float64, nlev+1),
		thetaNew: make([]float64, nlev),
		wNew:     make([]float64, nlev),
		wMid:     make([]float64, nlev),
	}
	for t := range r.qNew {
		r.qNew[t] = make([]float64, nlev)
	}
	return r
}

// VerticalRemap restores the layer distribution of a vertically
// Lagrangian integration: the HEVI solver holds dry mass in material
// layers (no cross-layer transport), so long integrations gradually
// deform the layer thicknesses. Remap conservatively redistributes the
// column onto uniform-sigma target layers — the standard
// Lin (2004)-style remap step used by vertically Lagrangian cores.
//
// The remap is first-order conservative (piecewise-constant
// reconstruction in dry-mass space): column integrals of dry mass,
// mass-weighted potential temperature, and every tracer are preserved to
// rounding. Vertical velocity and geopotential are re-derived: w is
// remapped like a mass-weighted scalar and phi is rebuilt hydrostatically
// (the acoustic adjustment re-establishes any nonhydrostatic residual
// within a few steps).
func VerticalRemap(s *State, tracers *tracer.Field) {
	NewRemapper(s.NLev).Run(s, tracers)
}

// Run remaps every column of s (and tracers, when non-nil) onto
// uniform-sigma target layers. See VerticalRemap for the scheme.
//
//grist:hotpath
func (r *Remapper) Run(s *State, tracers *tracer.Field) {
	nlev := s.NLev
	nc := s.M.NCells
	srcEdges, dstEdges := r.srcEdges, r.dstEdges
	thetaNew, wNew, wMid := r.thetaNew, r.wNew, r.wMid

	for c := 0; c < nc; c++ {
		base := c * nlev

		// Source interface coordinates (accumulated dry mass from the top).
		srcEdges[0] = 0
		for k := 0; k < nlev; k++ {
			srcEdges[k+1] = srcEdges[k] + s.DryMass[base+k]
		}
		colMass := srcEdges[nlev]
		// Target: uniform layers over the same column mass.
		for k := 0; k <= nlev; k++ {
			dstEdges[k] = colMass * float64(k) / float64(nlev)
		}

		// Remap each mass-weighted quantity by overlap integration.
		remapInto(srcEdges, dstEdges, s.ThetaM[base:base+nlev], s.DryMass[base:base+nlev], thetaNew)
		for k := 0; k < nlev; k++ {
			wMid[k] = 0.5 * (s.W[c*(nlev+1)+k] + s.W[c*(nlev+1)+k+1]) * s.DryMass[base+k]
		}
		remapInto(srcEdges, dstEdges, wMid, s.DryMass[base:base+nlev], wNew)
		if tracers != nil {
			for t := range tracers.Q {
				remapInto(srcEdges, dstEdges, tracers.Q[t][base:base+nlev], s.DryMass[base:base+nlev], r.qNew[t])
			}
		}

		// Commit the new column.
		dpiNew := colMass / float64(nlev)
		for k := 0; k < nlev; k++ {
			s.DryMass[base+k] = dpiNew
			s.ThetaM[base+k] = thetaNew[k]
			if tracers != nil {
				tracers.Mass[base+k] = dpiNew
				for t := range tracers.Q {
					tracers.Q[t][base+k] = r.qNew[t][k]
				}
			}
		}
		// Interface w from the remapped mass-weighted mids (boundaries
		// pinned at zero like the implicit solver's BCs).
		ibase := c * (nlev + 1)
		s.W[ibase] = 0
		s.W[ibase+nlev] = 0
		for i := 1; i < nlev; i++ {
			s.W[ibase+i] = 0.5 * (wNew[i-1] + wNew[i]) / dpiNew
		}
	}
	HydrostaticRebalance(s)
}

// remapInto conservatively transfers a mass-weighted source quantity
// (src, per source layer, already mass-weighted) onto destination layers
// by piecewise-constant overlap in the mass coordinate. srcMass gives
// the source layer thicknesses (used to form intensive values).
func remapInto(srcEdges, dstEdges, src, srcMass, dst []float64) {
	n := len(src)
	for k := range dst {
		dst[k] = 0
	}
	si := 0
	for di := 0; di < n; di++ {
		lo, hi := dstEdges[di], dstEdges[di+1]
		for si < n && srcEdges[si+1] <= lo {
			si++
		}
		for j := si; j < n && srcEdges[j] < hi; j++ {
			overlap := minF(hi, srcEdges[j+1]) - maxF(lo, srcEdges[j])
			if overlap <= 0 {
				continue
			}
			// Intensive value of source layer j times overlapped mass.
			if srcMass[j] > 0 {
				dst[di] += src[j] / srcMass[j] * overlap
			}
		}
	}
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
