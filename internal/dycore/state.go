// Package dycore implements the layer-averaged nonhydrostatic dynamical
// core of the model (§3.1.2 of the paper): a staggered finite-volume
// discretization of the compressible equations on the unstructured
// hexagonal C-grid, integrated with a horizontally-explicit
// vertically-implicit (HEVI) scheme. The six prognostic equations are dry
// mass, edge-normal velocity, (mass-weighted) potential temperature,
// vertical velocity, geopotential, and tracer mass (the latter handled by
// package tracer on top of the mass fluxes accumulated here).
//
// Kernels that appear in the paper's Fig. 9 CPE study keep their GRIST
// names: PrimalNormalFluxEdge, ComputeRRR, CalcCoriolisTerm,
// TendGradKEAtEdge, and the tracer-transport flux limiter.
package dycore

import (
	"math"

	"gristgo/internal/mesh"
)

// Physical constants (dry air, Earth).
const (
	Rd      = 287.04   // gas constant of dry air, J/kg/K
	Cp      = 1004.64  // heat capacity at constant pressure
	Cv      = Cp - Rd  // heat capacity at constant volume
	Gamma   = Cp / Cv  // ratio used by the acoustic linearization
	P0      = 1.0e5    // Exner reference pressure, Pa
	Gravity = 9.80616  // m/s^2
	Omega   = 7.292e-5 // Earth rotation rate, rad/s
	PTop    = 225.0    // model-top dry pressure, Pa (2.25 hPa as in §4.4)
)

// State holds the prognostic fields of the dynamical core in double
// precision (the "gold standard" storage; mixed-precision builds demote
// work arrays, not the state — §3.4.3).
//
// Layouts are column-major: cell fields index [c*NLev+k], edge fields
// [e*NLev+k], interface fields [c*(NLev+1)+i]. Level k=0 is the model
// top; interface i=0 is the top boundary, i=NLev the surface.
type State struct {
	M    *mesh.Mesh
	NLev int

	DryMass []float64 // delta-pi: dry-mass (pressure) thickness per layer, Pa
	ThetaM  []float64 // delta-pi * theta: mass-weighted potential temperature
	U       []float64 // edge-normal velocity, m/s
	W       []float64 // vertical velocity at interfaces, m/s
	Phi     []float64 // geopotential at interfaces, m^2/s^2

	PhiSurf []float64 // surface geopotential (topography), per cell
}

// NewState allocates a zero state over the mesh.
func NewState(m *mesh.Mesh, nlev int) *State {
	return &State{
		M:       m,
		NLev:    nlev,
		DryMass: make([]float64, m.NCells*nlev),
		ThetaM:  make([]float64, m.NCells*nlev),
		U:       make([]float64, m.NEdges*nlev),
		W:       make([]float64, m.NCells*(nlev+1)),
		Phi:     make([]float64, m.NCells*(nlev+1)),
		PhiSurf: make([]float64, m.NCells),
	}
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := NewState(s.M, s.NLev)
	copy(c.DryMass, s.DryMass)
	copy(c.ThetaM, s.ThetaM)
	copy(c.U, s.U)
	copy(c.W, s.W)
	copy(c.Phi, s.Phi)
	copy(c.PhiSurf, s.PhiSurf)
	return c
}

// SurfacePressure returns the dry surface pressure per cell:
// ptop + sum_k delta-pi.
func (s *State) SurfacePressure() []float64 {
	ps := make([]float64, s.M.NCells)
	for c := 0; c < s.M.NCells; c++ {
		sum := PTop
		for k := 0; k < s.NLev; k++ {
			sum += s.DryMass[c*s.NLev+k]
		}
		ps[c] = sum
	}
	return ps
}

// Theta returns the potential temperature of (cell, level).
func (s *State) Theta(c, k int) float64 {
	return s.ThetaM[c*s.NLev+k] / s.DryMass[c*s.NLev+k]
}

// LayerPressureFromPhi diagnoses the full (nonhydrostatic) pressure of
// layer k in column c from the equation of state,
// p = P0 * (Rd * rho * theta / P0)^gamma, with the density obtained from
// the geopotential thickness: rho = delta-pi / (phi_above - phi_below).
func (s *State) LayerPressureFromPhi(c, k int) float64 {
	dphi := s.Phi[c*(s.NLev+1)+k] - s.Phi[c*(s.NLev+1)+k+1]
	rho := s.DryMass[c*s.NLev+k] / dphi
	theta := s.Theta(c, k)
	return P0 * math.Pow(Rd*rho*theta/P0, Gamma)
}

// IsothermalRest initializes a hydrostatically balanced isothermal
// atmosphere at rest with the given temperature. This is a steady state
// of the continuous equations; a correct dycore holds it to rounding.
func (s *State) IsothermalRest(tempK float64) {
	nlev := s.NLev
	// Equal dry-mass (sigma) layers from PTop to psurf.
	const psurf = 1.0e5
	dpi := (psurf - PTop) / float64(nlev)
	for c := 0; c < s.M.NCells; c++ {
		s.PhiSurf[c] = 0
		// Interface pressures.
		s.Phi[c*(nlev+1)+nlev] = 0 // surface geopotential
		for k := nlev - 1; k >= 0; k-- {
			pUp := PTop + float64(k)*dpi     // interface above layer k
			pDown := PTop + float64(k+1)*dpi // interface below layer k
			s.DryMass[c*nlev+k] = dpi
			pMid := 0.5 * (pUp + pDown)
			// Discrete hydrostatic balance: dphi = Rd*T*dpi/pMid makes
			// the equation-of-state pressure equal pMid exactly (since
			// (1-kappa)*gamma = 1), the equilibrium of the implicit
			// vertical solver.
			s.Phi[c*(nlev+1)+k] = s.Phi[c*(nlev+1)+k+1] + Rd*tempK*dpi/pMid
			theta := tempK * math.Pow(P0/pMid, Rd/Cp)
			s.ThetaM[c*nlev+k] = dpi * theta
		}
	}
}

// AddThermalBubble perturbs potential temperature with a Gaussian bubble
// centered at (lat0, lon0), with horizontal half-width in radians and
// amplitude in kelvin applied in the lower half of the column. Used to
// trigger convection-like motion in tests and examples.
func (s *State) AddThermalBubble(lat0, lon0, halfWidth, amplitude float64) {
	center := mesh.FromLatLon(lat0, lon0)
	for c := 0; c < s.M.NCells; c++ {
		d := mesh.ArcLength(s.M.CellPos[c], center)
		w := math.Exp(-(d * d) / (halfWidth * halfWidth))
		if w < 1e-8 {
			continue
		}
		for k := s.NLev / 2; k < s.NLev; k++ {
			dpi := s.DryMass[c*s.NLev+k]
			theta := s.ThetaM[c*s.NLev+k] / dpi
			vert := math.Sin(math.Pi * float64(k-s.NLev/2) / float64(s.NLev/2))
			s.ThetaM[c*s.NLev+k] = dpi * (theta + amplitude*w*vert)
		}
	}
}

// AddSolidBodyWind sets the edge-normal velocities of a zonal solid-body
// rotation with equatorial speed u0 (m/s).
func (s *State) AddSolidBodyWind(u0 float64) {
	m := s.M
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		un := east.Scale(u0 * math.Cos(lat)).Dot(m.EdgeNormal[e])
		for k := 0; k < s.NLev; k++ {
			s.U[e*s.NLev+k] += un
		}
	}
}

// AddVortex superposes an idealized warm-core cyclonic vortex (a
// Rankine-like tangential wind with Gaussian decay) centered at
// (lat0, lon0). vmax is the peak tangential wind (m/s), rmax the radius
// of maximum wind in radians of arc. Used for the Typhoon Doksuri
// experiment (Fig. 7).
func (s *State) AddVortex(lat0, lon0, vmax, rmax float64) {
	m := s.M
	center := mesh.FromLatLon(lat0, lon0)
	for e := 0; e < m.NEdges; e++ {
		p := m.EdgePos[e]
		r := mesh.ArcLength(p, center)
		if r < 1e-12 || r > 12*rmax {
			continue
		}
		// Tangential speed profile: v = vmax * (r/rmax) * exp(1-r/rmax).
		x := r / rmax
		v := vmax * x * math.Exp(1-x)
		// Cyclonic (counterclockwise in NH): direction = up x rhat.
		rhat := p.Sub(center.Scale(p.Dot(center))).Normalize()
		dir := mesh.LocalVertical(p).Cross(rhat)
		un := dir.Scale(v).Dot(m.EdgeNormal[e])
		// Strongest at low levels, decaying upward.
		for k := 0; k < s.NLev; k++ {
			depth := float64(k+1) / float64(s.NLev)
			s.U[e*s.NLev+k] += un * depth
		}
	}
	// Warm core: raises theta near the center aloft.
	for c := 0; c < m.NCells; c++ {
		r := mesh.ArcLength(m.CellPos[c], center)
		w := math.Exp(-(r * r) / (2 * rmax * rmax))
		if w < 1e-8 {
			continue
		}
		for k := s.NLev / 4; k < 3*s.NLev/4; k++ {
			dpi := s.DryMass[c*s.NLev+k]
			theta := s.ThetaM[c*s.NLev+k] / dpi
			s.ThetaM[c*s.NLev+k] = dpi * (theta + 3.0*w)
		}
	}
}

// GlobalDryMass returns the area-integrated dry mass (a conserved
// invariant of the continuity equation).
func (s *State) GlobalDryMass() float64 {
	var total float64
	for c := 0; c < s.M.NCells; c++ {
		var col float64
		for k := 0; k < s.NLev; k++ {
			col += s.DryMass[c*s.NLev+k]
		}
		total += col * s.M.CellArea[c]
	}
	return total / Gravity
}
