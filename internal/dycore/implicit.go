package dycore

import (
	"math"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
)

// tangentialVelocityLevels applies the TRiSK tangential reconstruction to
// a multi-level edge field in working precision T.
func tangentialVelocityLevels[T precision.Real](m *mesh.Mesh, dst []T, u []float64, nlev, lo, hi int) {
	for e := lo; e < hi; e++ {
		for k := 0; k < nlev; k++ {
			var s T
			for j := m.TrskOff[e]; j < m.TrskOff[e+1]; j++ {
				s += T(m.TrskWeight[j]) * T(u[int(m.TrskEdge[j])*nlev+k])
			}
			dst[e*nlev+k] = s
		}
	}
}

// tangentialWinds evaluates the TRiSK reconstruction over the given
// edges (nil = every edge, chunked across the host workers when
// enabled).
//
//grist:hotpath
func (e *engine[T]) tangentialWinds(ids []int32) {
	m := e.s.M
	if ids == nil {
		e.parallelFor(m.NEdges, func(lo, hi int) {
			tangentialVelocityLevels(m, e.vtan, e.s.U, e.s.NLev, lo, hi)
		})
		return
	}
	for _, ed := range ids {
		tangentialVelocityLevels(m, e.vtan, e.s.U, e.s.NLev, int(ed), int(ed)+1)
	}
}

// implicitScratch is the per-goroutine workspace of the column solve;
// the engine's implicitPool recycles instances so the steady state stays
// allocation-free (the eight makes run once per worker, at pool misses).
type implicitScratch struct {
	p, a, dPi, diag, lower, upper, rhs, wNew []float64
}

// newImplicitScratch builds the pool constructor for nlev layers.
func newImplicitScratch(nlev int) func() any {
	ni := nlev + 1
	return func() any {
		return &implicitScratch{
			p: make([]float64, nlev), a: make([]float64, nlev),
			dPi: make([]float64, ni), diag: make([]float64, ni),
			lower: make([]float64, ni), upper: make([]float64, ni),
			rhs: make([]float64, ni), wNew: make([]float64, ni),
		}
	}
}

// implicitVertical performs the vertically-implicit acoustic adjustment
// of (w, phi): the vertical momentum and geopotential equations are
// linearized about the current state and solved as one tridiagonal system
// per column (the "vertically implicit" half of HEVI, §3.1.2). The solve
// is gravity-sensitive and therefore always runs in float64 (§3.4.2).
//
// Discretization (k = 0..K-1 layers top to bottom; interfaces i = 0..K):
//
//	w_i' = w_i + dt*g*( (p_k(i) - p_k(i-1))/dPi_i - 1 )      [interior i]
//	phi_i' = phi_i + dt*g*w_i'
//	p_k'  = p_k - a_k (w_k' - w_{k+1}') ,  a_k = Gamma p_k g dt / dphi_k
//
// with rigid boundaries w_0 = w_K = 0. Substituting p' into the momentum
// update yields a symmetric tridiagonal system in the interior w'.
//
//grist:hotpath
func (e *engine[T]) implicitVertical(dt float64) {
	s := e.s
	nlev := s.NLev
	if nlev < 2 {
		return
	}
	ni := nlev + 1

	e.eachTendCell(func(c int32) {
		sc := e.implicitPool.Get().(*implicitScratch)
		defer e.implicitPool.Put(sc)
		p, a, dPi := sc.p, sc.a, sc.dPi
		diag, lower, upper, rhs, wNew := sc.diag, sc.lower, sc.upper, sc.rhs, sc.wNew
		base := int(c) * nlev
		ibase := int(c) * ni

		// Layer pressures and linearization coefficients.
		for k := 0; k < nlev; k++ {
			dphi := s.Phi[ibase+k] - s.Phi[ibase+k+1]
			p[k] = s.LayerPressureFromPhi(int(c), k)
			a[k] = Gamma * p[k] * Gravity * dt / dphi
		}
		// Interface mass spacing dPi_i = pi_mid(k=i) - pi_mid(k=i-1).
		for i := 1; i < nlev; i++ {
			dPi[i] = 0.5 * (s.DryMass[base+i-1] + s.DryMass[base+i])
		}

		// Assemble the tridiagonal system for interior interfaces
		// i = 1..nlev-1. Layer above interface i is k=i-1; below is k=i.
		for i := 1; i < nlev; i++ {
			g := Gravity * dt / dPi[i]
			diag[i] = 1 + g*(a[i]+a[i-1])
			upper[i] = -g * a[i]   // couples to w_{i+1}
			lower[i] = -g * a[i-1] // couples to w_{i-1}
			rhs[i] = s.W[ibase+i] + Gravity*dt*((p[i]-p[i-1])/dPi[i]-1)
		}
		// Boundary conditions: w at top and surface fixed at 0.
		wNew[0], wNew[nlev] = 0, 0

		// Thomas algorithm on i = 1..nlev-1.
		for i := 2; i < nlev; i++ {
			m := lower[i] / diag[i-1]
			diag[i] -= m * upper[i-1]
			rhs[i] -= m * rhs[i-1]
		}
		if nlev >= 2 {
			wNew[nlev-1] = rhs[nlev-1] / diag[nlev-1]
			for i := nlev - 2; i >= 1; i-- {
				wNew[i] = (rhs[i] - upper[i]*wNew[i+1]) / diag[i]
			}
		}

		// Commit w and integrate phi.
		for i := 1; i < nlev; i++ {
			s.W[ibase+i] = wNew[i]
			s.Phi[ibase+i] += dt * Gravity * wNew[i]
		}
		// Keep the column monotone: geopotential must decrease downward.
		for i := nlev - 1; i >= 0; i-- {
			minGap := 1.0 // m^2/s^2, tiny floor
			if s.Phi[ibase+i] < s.Phi[ibase+i+1]+minGap {
				s.Phi[ibase+i] = s.Phi[ibase+i+1] + minGap
			}
		}
	})
}

// HydrostaticRebalance recomputes the geopotential of every column from
// hydrostatic balance with the current mass and temperature fields,
// zeroing w. Used to initialize phi consistently after constructing an
// initial state.
func HydrostaticRebalance(s *State) {
	nlev := s.NLev
	for c := 0; c < s.M.NCells; c++ {
		ibase := c * (nlev + 1)
		s.Phi[ibase+nlev] = s.PhiSurf[c]
		pDown := PTop
		for k := 0; k < nlev; k++ {
			pDown += s.DryMass[c*nlev+k]
		}
		for k := nlev - 1; k >= 0; k-- {
			dpi := s.DryMass[c*nlev+k]
			pUp := pDown - dpi
			theta := s.ThetaM[c*nlev+k] / dpi
			pMid := 0.5 * (pUp + pDown)
			// T = theta*(p/P0)^kappa; the discrete balance
			// dphi = Rd*T*dpi/pMid makes the equation-of-state pressure
			// equal pMid exactly, the implicit solver's equilibrium
			// (see State.IsothermalRest).
			tK := theta * math.Pow(pMid/P0, Rd/Cp)
			s.Phi[ibase+k] = s.Phi[ibase+k+1] + Rd*tK*dpi/pMid
			pDown = pUp
		}
		for i := 0; i <= nlev; i++ {
			s.W[ibase+i] = 0
		}
	}
}
