package dycore

import (
	"math"
	"testing"

	"gristgo/internal/mesh"
	"gristgo/internal/precision"
)

func testMesh(t testing.TB, level int) *mesh.Mesh {
	t.Helper()
	return mesh.New(level).ReorderBFS()
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

func TestIsothermalRestIsSteady(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 10, precision.DP)
	s := eng.State()
	s.IsothermalRest(280)

	ps0 := s.SurfacePressure()
	for i := 0; i < 10; i++ {
		eng.Step(60)
	}
	ps := s.SurfacePressure()
	if dev := precision.RelL2(ps, ps0); dev > 1e-6 {
		t.Errorf("surface pressure drifted: relL2 = %g", dev)
	}
	if u := maxAbs(s.U); u > 1e-4 {
		t.Errorf("spurious winds developed: max|u| = %g m/s", u)
	}
	if w := maxAbs(s.W); w > 1e-4 {
		t.Errorf("spurious vertical motion: max|w| = %g m/s", w)
	}
}

func TestDryMassConservation(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 8, precision.DP)
	s := eng.State()
	s.IsothermalRest(300)
	s.AddThermalBubble(0.3, 1.0, 0.2, 5)
	s.AddSolidBodyWind(20)

	mass0 := s.GlobalDryMass()
	for i := 0; i < 20; i++ {
		eng.Step(60)
	}
	mass := s.GlobalDryMass()
	if rel := math.Abs(mass-mass0) / mass0; rel > 1e-12 {
		t.Errorf("dry mass drifted by %g (relative)", rel)
	}
}

func TestBubbleDrivesMotionButStaysStable(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 10, precision.DP)
	s := eng.State()
	s.IsothermalRest(300)
	s.AddThermalBubble(0.0, 0.0, 0.15, 8)

	for i := 0; i < 60; i++ {
		eng.Step(60)
	}
	u := maxAbs(s.U)
	if u < 1e-3 {
		t.Errorf("bubble produced no motion: max|u| = %g", u)
	}
	if u > 150 {
		t.Errorf("run unstable: max|u| = %g", u)
	}
	for i, d := range s.DryMass {
		if d <= 0 || math.IsNaN(d) {
			t.Fatalf("non-positive dry mass at %d: %v", i, d)
		}
	}
}

func TestImplicitSolverAllowsAcousticCFLViolation(t *testing.T) {
	// With ~10 layers over 40 km, a vertically explicit scheme would
	// need dt < dz/c ~ 4000/340 ~ 12 s. The implicit solve must be
	// stable far beyond that.
	m := testMesh(t, 2)
	eng := New(m, 10, precision.DP)
	s := eng.State()
	s.IsothermalRest(280)
	s.AddThermalBubble(0.5, 0.5, 0.2, 10)
	for i := 0; i < 20; i++ {
		eng.Step(120) // 10x the vertical acoustic CFL limit
	}
	if w := maxAbs(s.W); w > 100 || math.IsNaN(w) {
		t.Errorf("implicit vertical solve unstable: max|w| = %g", w)
	}
}

func TestMixedPrecisionWithinThreshold(t *testing.T) {
	// §3.4.1: ps and vor of the mixed run must stay within 5% relative
	// L2 of the double-precision gold standard.
	m := testMesh(t, 3)

	run := func(mode precision.Mode) ([]float64, []float64) {
		eng := New(m, 8, mode)
		s := eng.State()
		s.IsothermalRest(300)
		s.AddThermalBubble(0.4, 2.0, 0.25, 6)
		s.AddSolidBodyWind(25)
		for i := 0; i < 30; i++ {
			eng.Step(60)
		}
		return s.SurfacePressure(), eng.VorticityAtLevel(4)
	}
	psDP, vorDP := run(precision.DP)
	psMX, vorMX := run(precision.Mixed)

	dev := precision.Measure(psMX, psDP, vorMX, vorDP)
	if !dev.Acceptable() {
		t.Errorf("mixed precision deviation too large: ps=%.4f vor=%.4f", dev.Ps, dev.Vor)
	}
	t.Logf("mixed-precision deviation: ps=%.2e vor=%.2e (threshold %.2f)", dev.Ps, dev.Vor, precision.ErrorThreshold)
}

func TestMassFluxAccumulatorIsDP(t *testing.T) {
	m := testMesh(t, 2)
	eng := New(m, 6, precision.Mixed)
	s := eng.State()
	s.IsothermalRest(290)
	s.AddSolidBodyWind(15)

	eng.Step(60)
	eng.Step(60)
	if eng.AccumSteps() != 2 {
		t.Fatalf("AccumSteps = %d", eng.AccumSteps())
	}
	acc := eng.MassFluxAccum()
	if maxAbs(acc) == 0 {
		t.Fatal("mass flux accumulator empty after steps with wind")
	}
	eng.ResetMassFluxAccum()
	if eng.AccumSteps() != 0 || maxAbs(eng.MassFluxAccum()) != 0 {
		t.Fatal("reset did not clear accumulator")
	}
}

func TestApplyHeatingWarmsColumn(t *testing.T) {
	m := testMesh(t, 2)
	eng := New(m, 6, precision.DP)
	s := eng.State()
	s.IsothermalRest(280)

	q1 := make([]float64, m.NCells*6)
	target := 100 // one column
	for k := 0; k < 6; k++ {
		q1[target*6+k] = 1.0 / 3600 // 1 K/h
	}
	before := s.Theta(target, 3)
	eng.ApplyHeating(q1, 3600)
	after := s.Theta(target, 3)
	// 1 K of temperature is slightly more than 1 K of theta at p<p0.
	if after-before < 0.9 {
		t.Errorf("heating raised theta by %g, want ~>=1", after-before)
	}
	// Other columns untouched.
	if d := s.Theta(5, 3) - before; math.Abs(d) > 1e-12 {
		t.Errorf("heating leaked to other columns: %g", d)
	}
}

func TestHydrostaticRebalanceMatchesIsothermal(t *testing.T) {
	m := testMesh(t, 2)
	s := NewState(m, 8)
	s.IsothermalRest(280)
	phi0 := append([]float64(nil), s.Phi...)
	HydrostaticRebalance(s)
	for i := range phi0 {
		if math.Abs(s.Phi[i]-phi0[i]) > 1e-6*(1+math.Abs(phi0[i])) {
			t.Fatalf("rebalance changed phi[%d]: %g vs %g", i, s.Phi[i], phi0[i])
		}
	}
}

func TestVorticityMatchesMeshOperator(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 4, precision.DP)
	s := eng.State()
	s.IsothermalRest(280)
	s.AddSolidBodyWind(30)
	vor := eng.VorticityAtLevel(2)
	// Solid body rotation: zeta = 2*u0/R*sin(lat).
	var worst float64
	for v := 0; v < m.NVerts; v++ {
		lat, _ := m.VertPos[v].LatLon()
		want := 2 * 30.0 / m.Radius * math.Sin(lat)
		if d := math.Abs(vor[v] - want); d > worst {
			worst = d
		}
	}
	if scale := 2 * 30.0 / m.Radius; worst > 0.1*scale {
		t.Errorf("vorticity error %g (scale %g)", worst, scale)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := testMesh(t, 1)
	s := NewState(m, 4)
	s.IsothermalRest(280)
	c := s.Clone()
	c.DryMass[0] += 5
	if s.DryMass[0] == c.DryMass[0] {
		t.Fatal("clone aliases DryMass")
	}
}

func TestVortexInjectsCyclonicCirculation(t *testing.T) {
	m := testMesh(t, 4)
	s := NewState(m, 6)
	s.IsothermalRest(300)
	lat0, lon0 := 0.35, 2.1
	s.AddVortex(lat0, lon0, 30, 0.05)
	// Vorticity near the center should be strongly positive (NH cyclone).
	eng := NewFromState(s, precision.DP)
	vor := eng.VorticityAtLevel(5)
	center := mesh.FromLatLon(lat0, lon0)
	var near float64
	n := 0
	for v := 0; v < m.NVerts; v++ {
		if mesh.ArcLength(m.VertPos[v], center) < 0.05 {
			near += vor[v]
			n++
		}
	}
	if n == 0 || near/float64(n) <= 0 {
		t.Errorf("no cyclonic vorticity at vortex center: mean=%g over %d verts", near/float64(n), n)
	}
}

// TestHostParallelismMatchesSerial: the OpenMP-analog shared-memory
// execution must reproduce the serial results exactly (loops are
// conflict-free per entity, so only scheduling changes).
func TestHostParallelismMatchesSerial(t *testing.T) {
	m := testMesh(t, 3)
	run := func(workers int) *State {
		eng := New(m, 8, precision.Mixed)
		eng.SetHostParallelism(workers)
		s := eng.State()
		s.InitIdealized(CaseTropicalCyclone)
		for i := 0; i < 5; i++ {
			eng.Step(90)
		}
		return s
	}
	serial := run(1)
	parallel := run(8)
	cmp := func(name string, a, b []float64) {
		t.Helper()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %v != %v", name, i, a[i], b[i])
			}
		}
	}
	cmp("DryMass", serial.DryMass, parallel.DryMass)
	cmp("ThetaM", serial.ThetaM, parallel.ThetaM)
	cmp("U", serial.U, parallel.U)
	cmp("W", serial.W, parallel.W)
	cmp("Phi", serial.Phi, parallel.Phi)
}

// TestSpongeLayerDampsTopWinds: winds confined to the top layer decay
// much faster than mid-level winds.
func TestSpongeLayerDampsTopWinds(t *testing.T) {
	m := testMesh(t, 2)
	eng := New(m, 8, precision.DP)
	s := eng.State()
	s.IsothermalRest(280)
	// Same wind at the top layer (k=0) and a mid layer (k=4).
	for e := 0; e < m.NEdges; e++ {
		lat, _ := m.EdgePos[e].LatLon()
		east, _ := mesh.TangentBasis(m.EdgePos[e])
		un := east.Scale(10 * math.Cos(lat)).Dot(m.EdgeNormal[e])
		s.U[e*8+0] = un
		s.U[e*8+4] = un
	}
	amp := func(k int) float64 {
		var a float64
		for e := 0; e < m.NEdges; e++ {
			a += s.U[e*8+k] * s.U[e*8+k]
		}
		return a
	}
	top0, mid0 := amp(0), amp(4)
	for i := 0; i < 10; i++ {
		eng.Step(120)
	}
	topDecay := amp(0) / top0
	midDecay := amp(4) / mid0
	if topDecay > 0.5*midDecay {
		t.Errorf("sponge ineffective: top retains %.3f, mid %.3f", topDecay, midDecay)
	}
}

func TestSpongeRateProfile(t *testing.T) {
	nlev := 10
	if spongeRate(0, nlev) <= spongeRate(1, nlev) {
		t.Error("sponge not strongest at the top")
	}
	for k := 2; k < nlev; k++ {
		if spongeRate(k, nlev) != 0 {
			t.Errorf("sponge leaks into layer %d", k)
		}
	}
}

// TestHyperdiffusionScaleSelectivity: del^4 must damp a grid-scale
// (checkerboard-like) wind perturbation much faster than a planetary-
// scale one, relative to what del^2 does.
func TestHyperdiffusionScaleSelectivity(t *testing.T) {
	m := testMesh(t, 3)
	nlev := 4

	energy := func(u []float64, edges []int32) float64 {
		var s float64
		for _, e := range edges {
			s += u[int(e)*nlev] * u[int(e)*nlev]
		}
		return s
	}
	all := make([]int32, m.NEdges)
	for i := range all {
		all[i] = int32(i)
	}

	run := func(hyper bool, gridScale bool) float64 {
		eng := New(m, nlev, precision.DP)
		if hyper {
			eng.EnableHyperdiffusion()
		}
		s := eng.State()
		s.IsothermalRest(280)
		for e := 0; e < m.NEdges; e++ {
			var amp float64
			if gridScale {
				amp = 2 * float64(e%2*2-1) // alternating-sign noise
			} else {
				lat, _ := m.EdgePos[e].LatLon()
				amp = 2 * math.Sin(lat)
			}
			for k := 0; k < nlev; k++ {
				s.U[e*nlev+k] = amp
			}
		}
		e0 := energy(s.U, all)
		for i := 0; i < 10; i++ {
			eng.Step(60)
		}
		return energy(s.U, all) / e0
	}

	// Hyperdiffusion kills grid noise hard...
	noiseH := run(true, true)
	if noiseH > 0.5 {
		t.Errorf("hyperdiffusion retained %.3f of grid noise", noiseH)
	}
	// ...while sparing the planetary scale far more than it spares noise.
	smoothH := run(true, false)
	if smoothH < 2*noiseH {
		t.Errorf("hyperdiffusion not scale-selective: smooth %.3f vs noise %.3f", smoothH, noiseH)
	}
}

func TestHyperdiffusionRejectsDistributed(t *testing.T) {
	m := testMesh(t, 2)
	eng := New(m, 4, precision.DP)
	eng.SetOwned(&OwnedSets{})
	defer func() {
		if recover() == nil {
			t.Error("no panic enabling hyperdiffusion on a distributed engine")
		}
	}()
	eng.EnableHyperdiffusion()
}
