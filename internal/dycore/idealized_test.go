package dycore

import (
	"math"
	"testing"

	"gristgo/internal/precision"
)

// TestMixedPrecisionHierarchy reproduces the §3.4.2 validation protocol:
// for every idealized case in the hierarchy, the mixed-precision dycore
// must stay within the 5% relative-L2 envelope of the double-precision
// gold standard on both observation points (ps and vor).
func TestMixedPrecisionHierarchy(t *testing.T) {
	m := testMesh(t, 3)
	for _, c := range AllIdealizedCases() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			run := func(mode precision.Mode) ([]float64, []float64) {
				eng := New(m, 8, mode)
				eng.State().InitIdealized(c)
				for i := 0; i < 25; i++ {
					eng.Step(90)
				}
				return eng.State().SurfacePressure(), eng.VorticityAtLevel(5)
			}
			psDP, vorDP := run(precision.DP)
			psMX, vorMX := run(precision.Mixed)
			dev := precision.Measure(psMX, psDP, vorMX, vorDP)
			if !dev.Acceptable() {
				t.Errorf("%s: mixed precision outside envelope: ps=%.4f vor=%.4f",
					c, dev.Ps, dev.Vor)
			}
			t.Logf("%s: ps dev %.2e, vor dev %.2e", c, dev.Ps, dev.Vor)
		})
	}
}

// TestIdealizedCasesRunStably integrates each case and checks physical
// sanity: finite fields, bounded winds, positive layer masses.
func TestIdealizedCasesRunStably(t *testing.T) {
	m := testMesh(t, 3)
	for _, c := range AllIdealizedCases() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			eng := New(m, 8, precision.DP)
			eng.State().InitIdealized(c)
			for i := 0; i < 40; i++ {
				eng.Step(90)
			}
			s := eng.State()
			if w := s.MaxWind(); w > 200 || math.IsNaN(w) {
				t.Fatalf("winds blew up: %v", w)
			}
			for i, d := range s.DryMass {
				if d <= 0 || math.IsNaN(d) {
					t.Fatalf("bad mass at %d: %v", i, d)
				}
			}
		})
	}
}

// TestBaroclinicWaveGrows checks the defining behavior: the zonal
// asymmetry of the surface pressure in the storm-track band grows from
// the small upstream seed over a ~2-day integration (baroclinic growth
// operates on day timescales).
func TestBaroclinicWaveGrows(t *testing.T) {
	m := testMesh(t, 4)
	eng := New(m, 8, precision.DP)
	eng.State().InitIdealized(CaseBaroclinicWave)

	// Eddy measure: variance of ps about its latitude-bin mean in the
	// 35-55N band — zero for a zonally symmetric state.
	eddy := func() float64 {
		ps := eng.State().SurfacePressure()
		const bins = 8
		var sum [bins]float64
		var cnt [bins]float64
		bin := func(lat float64) int {
			b := int((lat - 0.6) / (0.95 - 0.6) * bins)
			if b < 0 || b >= bins {
				return -1
			}
			return b
		}
		for c := 0; c < m.NCells; c++ {
			if b := bin(m.CellLat[c]); b >= 0 {
				sum[b] += ps[c]
				cnt[b]++
			}
		}
		var v, n float64
		for c := 0; c < m.NCells; c++ {
			if b := bin(m.CellLat[c]); b >= 0 && cnt[b] > 0 {
				d := ps[c] - sum[b]/cnt[b]
				v += d * d
				n++
			}
		}
		return v / n
	}
	e0 := eddy()
	for i := 0; i < 400; i++ { // 2 simulated days at dt=450s
		eng.Step(450)
	}
	e1 := eddy()
	if e1 <= 2*e0 {
		t.Errorf("baroclinic eddies did not grow: %g -> %g", e0, e1)
	}
}

// TestTropicalCycloneMaintainsVortex checks that the warm-core vortex
// persists as a coherent circulation.
func TestTropicalCycloneMaintainsVortex(t *testing.T) {
	m := testMesh(t, 4)
	eng := New(m, 6, precision.DP)
	eng.State().InitIdealized(CaseTropicalCyclone)

	circ := func() float64 {
		vor := eng.VorticityAtLevel(5)
		var best float64
		for v := 0; v < m.NVerts; v++ {
			if vor[v] > best {
				best = vor[v]
			}
		}
		return best
	}
	c0 := circ()
	for i := 0; i < 30; i++ {
		eng.Step(90)
	}
	c1 := circ()
	if c1 < 0.25*c0 {
		t.Errorf("vortex decayed too fast: %g -> %g", c0, c1)
	}
}

// TestSupercellUpdraft checks that the sheared thermal produces
// nonhydrostatic vertical motion.
func TestSupercellUpdraft(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 10, precision.DP)
	eng.State().InitIdealized(CaseSupercell)
	for i := 0; i < 20; i++ {
		eng.Step(60)
	}
	var maxW float64
	for _, w := range eng.State().W {
		if w > maxW {
			maxW = w
		}
	}
	if maxW < 1e-3 {
		t.Errorf("no updraft developed: max w = %g m/s", maxW)
	}
	if maxW > 80 {
		t.Errorf("unphysical updraft: %g m/s", maxW)
	}
}

// TestTotalEnergyBounded checks the energy diagnostic is conserved to a
// few percent over an adiabatic integration (the solver is not exactly
// energy conserving — diffusion and time truncation drain a little).
func TestTotalEnergyBounded(t *testing.T) {
	m := testMesh(t, 3)
	eng := New(m, 8, precision.DP)
	eng.State().InitIdealized(CaseBaroclinicWave)
	e0 := eng.State().TotalEnergy()
	for i := 0; i < 40; i++ {
		eng.Step(90)
	}
	e1 := eng.State().TotalEnergy()
	if rel := math.Abs(e1-e0) / e0; rel > 0.02 {
		t.Errorf("total energy drifted %.3f%% over 1h", 100*rel)
	}
}

// TestEnergyDiagnosticPositive sanity-checks the magnitude: Earth's
// atmosphere holds ~1e24 J of internal+potential energy.
func TestEnergyDiagnosticPositive(t *testing.T) {
	m := testMesh(t, 2)
	s := NewState(m, 6)
	s.IsothermalRest(280)
	e := s.TotalEnergy()
	if e < 1e23 || e > 1e25 {
		t.Errorf("total energy %.3e J outside the expected order", e)
	}
}
