package dycore

import (
	"runtime"
	"sync"
)

// SetHostParallelism enables shared-memory parallel execution of the
// engine's entity loops across n host workers (0 or 1 restores serial
// execution; negative uses GOMAXPROCS). This is the host-side analog of
// the paper's OpenMP parallelization: every loop is conflict-free per
// entity (§3.3.4 — "most of loops are conflict-free"), so the static
// chunking matches the "!$omp do" schedule.
//
// Parallel execution is only available for full-mesh (serial-domain)
// runs; distributed runs with OwnedSets keep their own decomposition.
func (e *engine[T]) SetHostParallelism(n int) {
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// parallelFor splits [0, n) into static chunks across the configured
// workers. With workers <= 1 it runs inline.
func (e *engine[T]) parallelFor(n int, body func(lo, hi int)) {
	w := e.workers
	if w <= 1 || n < 4*w {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// iterateParallel runs f over the id set (or [0, n) when ids is nil),
// in parallel when the engine is configured for it.
func (e *engine[T]) iterateParallel(ids []int32, n int, f func(int32)) {
	if ids != nil {
		// Distributed runs stay serial per rank (each rank is already a
		// goroutine).
		for _, i := range ids {
			f(i)
		}
		return
	}
	e.parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(int32(i))
		}
	})
}
