// Package fault provides seeded, deterministic fault injection for the
// resilience layer: a Plan decorates a comm.World (message drop, delay,
// FP32 bit-flip corruption) and the distributed runner (rank death at a
// chosen step), so every failure mode a chaos test exercises is exactly
// reproducible from (seed, profile).
//
// Determinism is the load-bearing property. Verdicts are pure functions
// of the seed and the message coordinates (from, to, tag, attempt), not
// of scheduling order, so two runs with the same plan inject the same
// faults — which is what lets the recovery tests assert bitwise-
// identical final states against an uninjected run.
//
// The fault model targets the halo data plane: only messages with
// non-negative tags (the exchanger's per-round tags start at 100) are
// dropped, delayed or corrupted. Control-plane collectives use negative
// tags and are exempt — at scale those travel a reliable service
// network, and in-process it keeps a lossy profile from wedging the
// recovery machinery itself.
package fault

import (
	"fmt"
	"log/slog"
	"math"
	"sync"
	"time"

	"gristgo/internal/detrand"
)

// Profile declares a fault mix. The zero value injects nothing.
type Profile struct {
	Name string

	// Message faults, applied per delivery attempt on halo-plane tags.
	DropProb  float64       // probability an attempt is dropped (retried with backoff)
	DelayProb float64       // probability an attempt is delayed
	MaxDelay  time.Duration // injected delays are uniform in (0, MaxDelay]

	// Payload corruption: with probability FlipProb per message (first
	// attempt only), flip FlipBit of 1 + words/64 FP32 words chosen
	// deterministically. MaxFlips bounds how many messages the plan may
	// corrupt over its lifetime (0 = unlimited); fired flips stay spent
	// across rollback legs so a transient corruption is not replayed.
	FlipProb float64
	MaxFlips int
	FlipBit  uint // bit within each 32-bit word; 0 means default (30, exponent MSB)

	// Rank death: rank KillRank exits at the top of step KillStep
	// (0-based), once. Disabled when KillRank < 0 or when both fields
	// are zero (so the zero-value Profile injects nothing; killing rank
	// 0 at step 0 is not expressible, kill it at step 1 instead).
	KillRank int
	KillStep int
}

// Profiles names the built-in profiles for flag help.
func Profiles() string {
	return "off, drop, delay, bitflip, rankdeath, shrinkgrow, chaos, mlnan"
}

// ParseProfile resolves a named fault profile. The "mlnan" profile is
// recognized but injects nothing at the transport level — drivers wire
// it to the ML-physics output hook (see MLOutputFault).
func ParseProfile(name string) (Profile, error) {
	p := Profile{Name: name, KillRank: -1}
	switch name {
	case "", "off", "none", "mlnan":
	case "drop":
		p.DropProb = 0.2
	case "delay":
		p.DelayProb = 0.3
		p.MaxDelay = 2 * time.Millisecond
	case "bitflip":
		p.FlipProb = 0.05
		p.MaxFlips = 1
	case "rankdeath":
		p.KillRank = 1
		p.KillStep = 4
	case "shrinkgrow":
		// The elastic membership scenario: node 1 dies at step 4; the
		// driver shrinks to the survivors and later re-absorbs the node
		// (see core.RunDistributedDynamicsElastic and the elastic
		// experiment). The kill addresses a stable NODE id, so the
		// re-added node is not re-killed — the Plan's one-shot kill
		// stays spent anyway.
		p.KillRank = 1
		p.KillStep = 4
	case "chaos":
		p.DropProb = 0.1
		p.DelayProb = 0.2
		p.MaxDelay = time.Millisecond
	default:
		return Profile{}, fmt.Errorf("fault: unknown profile %q (known: %s)", name, Profiles())
	}
	return p, nil
}

// Event records one injected fault for the chaos artifacts.
type Event struct {
	Kind    string `json:"kind"` // "drop", "delay", "bitflip", "kill"
	From    int    `json:"from"`
	To      int    `json:"to"`
	Tag     int    `json:"tag"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// maxEvents bounds the event log; further injections are counted but
// not individually recorded.
const maxEvents = 1024

// Plan is a seeded instance of a Profile. It implements comm.Injector
// (message faults) and core.StepGate (rank death). One-shot faults —
// the rank kill, and bit-flips once MaxFlips is reached — stay spent
// for the Plan's lifetime, so a recovery leg replaying the same steps
// does not re-suffer the transient it is recovering from.
type Plan struct {
	Seed int64
	Prof Profile

	// Log, when non-nil, receives one structured record per injected
	// fault (kind, from, to, tag) in addition to the bounded event log.
	// Injection verdicts are pure functions of the coordinates, so the
	// logging side channel cannot perturb them.
	Log *slog.Logger

	mu       sync.Mutex
	flips    int
	killed   bool
	events   []Event
	overflow int // events beyond maxEvents
}

// NewPlan creates a fault plan for the given seed and profile.
func NewPlan(seed int64, p Profile) *Plan {
	if p.FlipBit == 0 {
		p.FlipBit = 30 // FP32 exponent MSB: flips are numerically loud
	}
	return &Plan{Seed: seed, Prof: p}
}

// mix is one splitmix64 step (detrand.Step) — the per-coordinate hash
// behind every verdict.
func mix(x uint64) uint64 { return detrand.Step(x) }

// hash folds the message coordinates and a purpose salt into one
// deterministic 64-bit value via detrand.Fold, so the derivation chain
// is the sanctioned splitmix64 stream and nothing else.
func (p *Plan) hash(from, to, tag, attempt, salt int) uint64 {
	x := detrand.Step(uint64(p.Seed) ^ 0x6772697374666c74) // "gristflt"
	x = detrand.Fold(x, uint64(int64(from)))
	x = detrand.Fold(x, uint64(int64(to)))
	x = detrand.Fold(x, uint64(int64(tag)))
	x = detrand.Fold(x, uint64(int64(attempt)))
	return detrand.Fold(x, uint64(int64(salt)))
}

// unit maps a hash to [0, 1).
func unit(x uint64) float64 { return detrand.Unit(x) }

// Verdict salts, one per fault kind so the draws are independent.
const (
	saltDrop = iota + 1
	saltDelay
	saltDelayLen
	saltFlip
	saltFlipWord
)

// OnSend implements comm.Injector: returns the (deterministic) drop and
// delay verdicts for one delivery attempt and applies payload
// corruption in place. Negative tags (control-plane collectives) pass
// untouched.
//
//grist:bitwise
func (p *Plan) OnSend(from, to, tag, attempt int, data []byte) (drop bool, delay time.Duration) {
	if tag < 0 {
		return false, 0
	}
	pr := &p.Prof
	if pr.DelayProb > 0 && unit(p.hash(from, to, tag, attempt, saltDelay)) < pr.DelayProb {
		frac := unit(p.hash(from, to, tag, attempt, saltDelayLen))
		delay = time.Duration(frac * float64(pr.MaxDelay))
		if delay <= 0 {
			delay = time.Microsecond
		}
		p.record(Event{Kind: "delay", From: from, To: to, Tag: tag, Attempt: attempt,
			Detail: delay.String()})
	}
	if pr.FlipProb > 0 && attempt == 0 && len(data) >= 4 &&
		unit(p.hash(from, to, tag, 0, saltFlip)) < pr.FlipProb {
		p.flip(from, to, tag, data)
	}
	if pr.DropProb > 0 && unit(p.hash(from, to, tag, attempt, saltDrop)) < pr.DropProb {
		drop = true
		p.record(Event{Kind: "drop", From: from, To: to, Tag: tag, Attempt: attempt})
	}
	return drop, delay
}

// flip corrupts 1 + words/64 FP32 words of the payload by XOR-ing
// FlipBit, honoring the lifetime MaxFlips budget.
func (p *Plan) flip(from, to, tag int, data []byte) {
	p.mu.Lock()
	if p.Prof.MaxFlips > 0 && p.flips >= p.Prof.MaxFlips {
		p.mu.Unlock()
		return
	}
	p.flips++
	p.mu.Unlock()
	words := len(data) / 4
	n := 1 + words/64
	bit := p.Prof.FlipBit % 32
	for i := 0; i < n; i++ {
		w := int(p.hash(from, to, tag, i, saltFlipWord) % uint64(words))
		data[4*w+int(bit/8)] ^= 1 << (bit % 8)
	}
	p.record(Event{Kind: "bitflip", From: from, To: to, Tag: tag,
		Detail: fmt.Sprintf("%d words, bit %d", n, bit)})
}

// PermitStep implements the distributed runner's StepGate: it returns
// false exactly once, for the profile's (KillRank, KillStep), after
// which the rank's goroutine exits and its peers detect the death via
// halo/barrier deadlines.
func (p *Plan) PermitStep(rank, step int) bool {
	pr := &p.Prof
	if pr.KillRank < 0 || (pr.KillRank == 0 && pr.KillStep == 0) ||
		rank != pr.KillRank || step != pr.KillStep {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.killed {
		return true
	}
	p.killed = true
	p.events = append(p.events, Event{Kind: "kill", From: rank, Detail: fmt.Sprintf("step %d", step)})
	return false
}

// record appends to the bounded event log and mirrors the event to the
// structured logger when one is attached.
func (p *Plan) record(e Event) {
	p.mu.Lock()
	if len(p.events) < maxEvents {
		p.events = append(p.events, e)
	} else {
		p.overflow++
	}
	p.mu.Unlock()
	if p.Log != nil {
		p.Log.Debug("fault injected",
			"kind", e.Kind, "from", e.From, "to", e.To, "tag", e.Tag,
			"attempt", e.Attempt, "detail", e.Detail)
	}
}

// Events returns a copy of the injected-fault log (at most maxEvents
// entries) and the count of unrecorded overflow events.
func (p *Plan) Events() ([]Event, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Event(nil), p.events...), p.overflow
}

// Flips returns how many messages have been corrupted so far.
func (p *Plan) Flips() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flips
}

// MLOutputFault returns an ML-physics output-corruption hook (see
// mlphysics.Suite.SetOutputFault): on the at-th Compute call (1-based,
// derived deterministically from seed when at <= 0) it overwrites three
// tendency outputs with NaN — the signature failure of an FP32
// inference overflow — exercising the suite's scalar-oracle fallback.
func MLOutputFault(seed int64, at int) func(tend, rad []float64) {
	if at <= 0 {
		at = 2 + int(mix(uint64(seed))%5)
	}
	calls := 0
	return func(tend, rad []float64) {
		calls++
		if calls != at || len(tend) == 0 {
			return
		}
		nan := math.NaN()
		for i := 0; i < 3 && i < len(tend); i++ {
			w := int(mix(uint64(seed)^uint64(i+1)) % uint64(len(tend)))
			tend[w] = nan
		}
	}
}
