package fault

// Filesystem fault injection: FS decorates a vfs.FS with the storage
// failure modes real checkpoints die of — torn writes (a short write
// followed by an error), silent read bit-flips, ENOSPC, EIO, slow IO
// and rename-before-sync reordering (the rename's metadata persists
// while the data pages it points at are lost). Like the message-plane
// Plan, every verdict is a pure function of (seed, file name, per-file
// operation ordinal, fault kind) via the sanctioned detrand machinery,
// so a chaos run replays bit-identically from its seed.
//
// Temp-file suffixes are stripped before hashing (CreateTemp draws
// real entropy for its names), so the verdict stream for a checkpoint
// shard does not depend on how many temp names the os package burned.

import (
	"fmt"
	iofs "io/fs"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"gristgo/internal/detrand"
	"gristgo/internal/vfs"
)

// FSProfile declares a filesystem fault mix. The zero value injects
// nothing. Probabilities are per operation on the decorated FS.
type FSProfile struct {
	Name string

	WriteTornProb  float64       // a Write persists a prefix, then errors
	WriteErrProb   float64       // a Write/Create fails outright (ENOSPC)
	ReadErrProb    float64       // a read fails (EIO)
	ReadFlipProb   float64       // a read silently flips one bit per 512 bytes
	SlowProb       float64       // an operation stalls
	MaxSlow        time.Duration // injected stalls are uniform in (0, MaxSlow]
	RenameTornProb float64       // a Rename lands before the data synced: the
	// destination holds a truncated prefix of the source
}

// FSProfiles names the built-in filesystem profiles for flag help.
func FSProfiles() string { return "off, fsflaky, fstorn, fsslow" }

// ParseFSProfile resolves a named filesystem fault profile.
func ParseFSProfile(name string) (FSProfile, error) {
	p := FSProfile{Name: name}
	switch name {
	case "", "off", "none":
	case "fsflaky":
		p.ReadErrProb = 0.10
		p.ReadFlipProb = 0.05
		p.WriteErrProb = 0.05
		p.SlowProb = 0.05
		p.MaxSlow = 2 * time.Millisecond
	case "fstorn":
		p.WriteTornProb = 0.15
		p.RenameTornProb = 0.25
	case "fsslow":
		p.SlowProb = 0.5
		p.MaxSlow = 5 * time.Millisecond
	default:
		return FSProfile{}, fmt.Errorf("fault: unknown fs profile %q (known: %s)", name, FSProfiles())
	}
	return p, nil
}

// Verdict salts for the filesystem fault kinds, disjoint from the
// message-plane salts so a shared seed draws independent streams.
const (
	saltFSWriteTorn = iota + 16
	saltFSWriteErr
	saltFSReadErr
	saltFSReadFlip
	saltFSSlow
	saltFSSlowLen
	saltFSRenameTorn
	saltFSTornLen
	saltFSFlipBit
)

// FS is a seeded fault-injecting decorator over an inner vfs.FS. Safe
// for concurrent use; verdicts depend only on (seed, name, per-name
// operation ordinal, kind). SetActive(false) turns injection off —
// the recovery phase of a chaos run — without losing the event log.
type FS struct {
	Seed  int64
	Prof  FSProfile
	inner vfs.FS

	active atomic.Bool

	mu       sync.Mutex
	ops      map[string]int // per-name operation ordinals
	events   []Event
	overflow int
	counts   map[string]int
}

// NewFS decorates inner with the given seeded fault profile; the
// decorator starts active.
func NewFS(inner vfs.FS, seed int64, p FSProfile) *FS {
	f := &FS{Seed: seed, Prof: p, inner: inner, ops: map[string]int{}, counts: map[string]int{}}
	f.active.Store(true)
	return f
}

// SetActive enables or disables injection. Disabling is how a chaos
// harness ends the fault phase: in-flight state (event log, ordinals)
// is kept so a later re-enable continues the same verdict stream.
func (f *FS) SetActive(on bool) { f.active.Store(on) }

// Active reports whether injection is on.
func (f *FS) Active() bool { return f.active.Load() }

// FSEvents returns a copy of the injected-fault log, the overflow
// count, and per-kind totals.
func (f *FS) FSEvents() ([]Event, int, map[string]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	counts := make(map[string]int, len(f.counts))
	for k, v := range f.counts {
		counts[k] = v
	}
	return append([]Event(nil), f.events...), f.overflow, counts
}

// key canonicalizes a file name for verdict hashing: the base name
// with any CreateTemp entropy suffix stripped, so verdicts are stable
// across runs that draw different temp names.
func fsKey(name string) string {
	base := name
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.Index(base, ".tmp-"); i >= 0 {
		base = base[:i+len(".tmp-")]
	}
	return base
}

// draw returns the deterministic unit draw for the op-th operation of
// kind salt on name, bumping the per-name ordinal exactly once per
// operation (callers pass the same ordinal to every kind they test).
func (f *FS) hash(key string, op, salt int) uint64 {
	x := detrand.Step(uint64(f.Seed) ^ 0x67726973746673) // "gristfs"
	for i := 0; i < len(key); i++ {
		x = detrand.Fold(x, uint64(key[i]))
	}
	x = detrand.Fold(x, uint64(int64(op)))
	return detrand.Fold(x, uint64(int64(salt)))
}

// nextOp claims the next operation ordinal for name.
func (f *FS) nextOp(key string) int {
	f.mu.Lock()
	op := f.ops[key]
	f.ops[key] = op + 1
	f.mu.Unlock()
	return op
}

// record logs one injected filesystem fault.
func (f *FS) record(kind, name, detail string) {
	f.mu.Lock()
	f.counts[kind]++
	if len(f.events) < maxEvents {
		f.events = append(f.events, Event{Kind: kind, Tag: -1, Detail: name + ": " + detail})
	} else {
		f.overflow++
	}
	f.mu.Unlock()
}

// stall injects the slow-IO fault for one operation.
func (f *FS) stall(key string, op int) {
	if f.Prof.SlowProb <= 0 || detrand.Unit(f.hash(key, op, saltFSSlow)) >= f.Prof.SlowProb {
		return
	}
	frac := detrand.Unit(f.hash(key, op, saltFSSlowLen))
	d := time.Duration(frac * float64(f.Prof.MaxSlow))
	if d <= 0 {
		d = time.Microsecond
	}
	f.record("fsslow", key, d.String())
	time.Sleep(d)
}

// corruptRead flips one bit per 512 bytes of buf, deterministically.
func (f *FS) corruptRead(key string, op int, buf []byte) {
	if len(buf) == 0 {
		return
	}
	n := 1 + len(buf)/512
	for i := 0; i < n; i++ {
		h := f.hash(key, op, saltFSReadFlip+16*(i+1))
		pos := int(h % uint64(len(buf)))
		bit := (h >> 32) % 8
		buf[pos] ^= 1 << bit
	}
	f.record("fsreadflip", key, fmt.Sprintf("%d bits", n))
}

// --- vfs.FS implementation -------------------------------------------------

// Open decorates the returned file with the read-side faults.
func (f *FS) Open(name string) (vfs.File, error) {
	key := fsKey(name)
	op := f.nextOp(key)
	if f.active.Load() {
		f.stall(key, op)
	}
	inner, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{FS: f, inner: inner, key: key}, nil
}

// Create decorates the returned file with the write-side faults; the
// create itself can fail with injected ENOSPC.
func (f *FS) Create(name string) (vfs.File, error) {
	return f.create(name, func() (vfs.File, error) { return f.inner.Create(name) })
}

// CreateTemp is Create for uniquely named temp files.
func (f *FS) CreateTemp(dir, pattern string) (vfs.File, error) {
	return f.create(dir+"/"+pattern, func() (vfs.File, error) { return f.inner.CreateTemp(dir, pattern) })
}

func (f *FS) create(name string, mk func() (vfs.File, error)) (vfs.File, error) {
	key := fsKey(name)
	op := f.nextOp(key)
	if f.active.Load() {
		f.stall(key, op)
		if f.Prof.WriteErrProb > 0 && detrand.Unit(f.hash(key, op, saltFSWriteErr)) < f.Prof.WriteErrProb {
			f.record("fsenospc", key, "create")
			return nil, fmt.Errorf("fault: injected on create %s: %w", key, syscall.ENOSPC)
		}
	}
	inner, err := mk()
	if err != nil {
		return nil, err
	}
	return &faultFile{FS: f, inner: inner, key: key}, nil
}

// ReadFile injects EIO and silent bit-flips on whole-file reads.
func (f *FS) ReadFile(name string) ([]byte, error) {
	key := fsKey(name)
	op := f.nextOp(key)
	if f.active.Load() {
		f.stall(key, op)
		if f.Prof.ReadErrProb > 0 && detrand.Unit(f.hash(key, op, saltFSReadErr)) < f.Prof.ReadErrProb {
			f.record("fseio", key, "readfile")
			return nil, fmt.Errorf("fault: injected reading %s: %w", key, syscall.EIO)
		}
	}
	buf, err := f.inner.ReadFile(name)
	if err != nil {
		return buf, err
	}
	if f.active.Load() && f.Prof.ReadFlipProb > 0 &&
		detrand.Unit(f.hash(key, op, saltFSReadFlip)) < f.Prof.ReadFlipProb {
		f.corruptRead(key, op, buf)
	}
	return buf, nil
}

// Rename injects the rename-before-sync reorder: with the torn
// verdict, the source is truncated to a prefix before the rename, so
// the destination name commits while its data did not — exactly what
// a power cut between rename and data writeback leaves behind.
func (f *FS) Rename(oldpath, newpath string) error {
	key := fsKey(newpath)
	op := f.nextOp(key)
	if f.active.Load() {
		f.stall(key, op)
		if f.Prof.RenameTornProb > 0 && detrand.Unit(f.hash(key, op, saltFSRenameTorn)) < f.Prof.RenameTornProb {
			if err := f.tearFile(oldpath, key, op); err == nil {
				f.record("fsrenametorn", key, "data pages lost before rename")
			}
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

// tearFile rewrites path holding only a deterministic prefix of its
// current content (at least the first byte, never the whole file).
func (f *FS) tearFile(path, key string, op int) error {
	raw, err := f.inner.ReadFile(path)
	if err != nil || len(raw) < 2 {
		return err
	}
	frac := detrand.Unit(f.hash(key, op, saltFSTornLen))
	keep := 1 + int(frac*float64(len(raw)-1))
	if keep >= len(raw) {
		keep = len(raw) - 1
	}
	w, err := f.inner.Create(path)
	if err != nil {
		return err
	}
	if _, err := w.Write(raw[:keep]); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Remove passes through (the fault model never blocks cleanup).
func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// Stat injects only latency (liveness checks should see real state).
func (f *FS) Stat(name string) (iofs.FileInfo, error) {
	key := fsKey(name)
	if f.active.Load() {
		f.stall(key, f.nextOp(key))
	}
	return f.inner.Stat(name)
}

// MkdirAll passes through.
func (f *FS) MkdirAll(path string, perm iofs.FileMode) error { return f.inner.MkdirAll(path, perm) }

// Glob injects EIO (a directory listing can fail too).
func (f *FS) Glob(pattern string) ([]string, error) {
	key := fsKey(pattern)
	op := f.nextOp(key)
	if f.active.Load() {
		f.stall(key, op)
		if f.Prof.ReadErrProb > 0 && detrand.Unit(f.hash(key, op, saltFSReadErr)) < f.Prof.ReadErrProb/4 {
			f.record("fseio", key, "glob")
			return nil, fmt.Errorf("fault: injected listing %s: %w", key, syscall.EIO)
		}
	}
	return f.inner.Glob(pattern)
}

// faultFile decorates one open file with per-operation verdicts.
type faultFile struct {
	*FS
	inner vfs.File
	key   string
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

// Write injects ENOSPC and torn writes: the torn verdict persists a
// deterministic prefix of b and then reports failure, the short-write
// shape a full disk or a crashed NFS server produces.
func (ff *faultFile) Write(b []byte) (int, error) {
	op := ff.nextOp(ff.key)
	if !ff.active.Load() {
		return ff.inner.Write(b)
	}
	ff.stall(ff.key, op)
	if ff.Prof.WriteErrProb > 0 && detrand.Unit(ff.hash(ff.key, op, saltFSWriteErr)) < ff.Prof.WriteErrProb {
		ff.record("fsenospc", ff.key, "write")
		return 0, fmt.Errorf("fault: injected writing %s: %w", ff.key, syscall.ENOSPC)
	}
	if ff.Prof.WriteTornProb > 0 && len(b) > 1 &&
		detrand.Unit(ff.hash(ff.key, op, saltFSWriteTorn)) < ff.Prof.WriteTornProb {
		frac := detrand.Unit(ff.hash(ff.key, op, saltFSTornLen))
		keep := 1 + int(frac*float64(len(b)-1))
		if keep >= len(b) {
			keep = len(b) - 1
		}
		n, err := ff.inner.Write(b[:keep])
		if err != nil {
			return n, err
		}
		ff.record("fstorn", ff.key, fmt.Sprintf("%d of %d bytes", n, len(b)))
		return n, fmt.Errorf("fault: injected short write on %s (%d of %d bytes): %w",
			ff.key, n, len(b), syscall.ENOSPC)
	}
	return ff.inner.Write(b)
}

// Read injects EIO and silent bit-flips on streaming reads.
func (ff *faultFile) Read(b []byte) (int, error) {
	op := ff.nextOp(ff.key)
	if !ff.active.Load() {
		return ff.inner.Read(b)
	}
	ff.stall(ff.key, op)
	if ff.Prof.ReadErrProb > 0 && detrand.Unit(ff.hash(ff.key, op, saltFSReadErr)) < ff.Prof.ReadErrProb {
		ff.record("fseio", ff.key, "read")
		return 0, fmt.Errorf("fault: injected reading %s: %w", ff.key, syscall.EIO)
	}
	n, err := ff.inner.Read(b)
	if n > 0 && ff.Prof.ReadFlipProb > 0 &&
		detrand.Unit(ff.hash(ff.key, op, saltFSReadFlip)) < ff.Prof.ReadFlipProb {
		ff.corruptRead(ff.key, op, b[:n])
	}
	return n, err
}

// ReadAt mirrors Read's fault model for positional reads.
func (ff *faultFile) ReadAt(b []byte, off int64) (int, error) {
	op := ff.nextOp(ff.key)
	if !ff.active.Load() {
		return ff.inner.ReadAt(b, off)
	}
	ff.stall(ff.key, op)
	if ff.Prof.ReadErrProb > 0 && detrand.Unit(ff.hash(ff.key, op, saltFSReadErr)) < ff.Prof.ReadErrProb {
		ff.record("fseio", ff.key, "readat")
		return 0, fmt.Errorf("fault: injected reading %s: %w", ff.key, syscall.EIO)
	}
	n, err := ff.inner.ReadAt(b, off)
	if n > 0 && ff.Prof.ReadFlipProb > 0 &&
		detrand.Unit(ff.hash(ff.key, op, saltFSReadFlip)) < ff.Prof.ReadFlipProb {
		ff.corruptRead(ff.key, op, b[:n])
	}
	return n, err
}

// Sync can stall but never lies about success: the lie the fault
// model tells is the rename reorder, which is injected where the
// damage lands (Rename), keeping each fault's blast radius auditable.
func (ff *faultFile) Sync() error {
	if ff.active.Load() {
		ff.stall(ff.key, ff.nextOp(ff.key))
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
