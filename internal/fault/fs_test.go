package fault

import (
	"errors"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"gristgo/internal/vfs"
)

// writeThrough creates name on fsys, writes content, syncs and closes,
// returning the first error.
func writeThrough(fsys vfs.FS, name, content string) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(content)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestFSKeyCanonicalization(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"/a/b/shard-e000001-r0000.grist", "shard-e000001-r0000.grist"},
		{"/tmp/x/.epoch-000001.json.tmp-83651234", ".epoch-000001.json.tmp-"},
		{"plain", "plain"},
	} {
		if got := fsKey(tc.in); got != tc.want {
			t.Errorf("fsKey(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// The verdict stream must depend only on (seed, base name, ordinal),
// never on the directory or temp-name entropy — that is what makes a
// chaos run replayable.
func TestFSDeterministicAcrossDirs(t *testing.T) {
	run := func(dir string) map[string]int {
		ffs := NewFS(vfs.OS, 42, FSProfile{
			WriteTornProb: 0.3, WriteErrProb: 0.2, ReadErrProb: 0.2, ReadFlipProb: 0.2,
		})
		for i := 0; i < 20; i++ {
			name := filepath.Join(dir, "record.bin")
			writeThrough(ffs, name, strings.Repeat("x", 700))
			ffs.ReadFile(name)
		}
		_, _, counts := ffs.FSEvents()
		return counts
	}
	a, b := run(t.TempDir()), run(t.TempDir())
	if len(a) == 0 {
		t.Fatal("no faults injected at these probabilities over 20 rounds")
	}
	for k, v := range a {
		if b[k] != v {
			t.Errorf("count[%q]: %d in run A, %d in run B", k, v, b[k])
		}
	}
	if len(b) != len(a) {
		t.Errorf("fault kinds differ: %v vs %v", a, b)
	}
}

func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, 1, FSProfile{WriteTornProb: 1})
	name := filepath.Join(dir, "torn.bin")
	f, err := ffs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("abcdefgh", 32)
	n, err := f.Write([]byte(payload))
	f.Close()
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn write error = %v, want ENOSPC in chain", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write persisted %d of %d bytes, want a strict prefix", n, len(payload))
	}
	raw, rerr := vfs.OS.ReadFile(name)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(raw) != payload[:n] {
		t.Fatalf("on-disk prefix mismatch: %d bytes on disk, Write reported %d", len(raw), n)
	}
}

func TestFSEnospcAndEIO(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, 2, FSProfile{WriteErrProb: 1})
	if _, err := ffs.Create(filepath.Join(dir, "full.bin")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Create under WriteErrProb=1 = %v, want ENOSPC", err)
	}

	if err := writeThrough(vfs.OS, filepath.Join(dir, "ok.bin"), "data"); err != nil {
		t.Fatal(err)
	}
	rfs := NewFS(vfs.OS, 2, FSProfile{ReadErrProb: 1})
	if _, err := rfs.ReadFile(filepath.Join(dir, "ok.bin")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadFile under ReadErrProb=1 = %v, want EIO", err)
	}
}

func TestFSReadBitFlip(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "flip.bin")
	payload := strings.Repeat("\x00", 1024)
	if err := writeThrough(vfs.OS, name, payload); err != nil {
		t.Fatal(err)
	}
	ffs := NewFS(vfs.OS, 3, FSProfile{ReadFlipProb: 1})
	raw, err := ffs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	flipped := 0
	for _, b := range raw {
		if b != 0 {
			flipped++
		}
	}
	if flipped == 0 {
		t.Fatal("ReadFlipProb=1 read back unmodified bytes")
	}
	// 1 bit per 512 bytes: a 1024-byte file gets at most 3 corrupt bytes.
	if flipped > 3 {
		t.Fatalf("%d corrupt bytes, want at most 3 for 1 KiB", flipped)
	}
	_, _, counts := ffs.FSEvents()
	if counts["fsreadflip"] == 0 {
		t.Fatal("flip not recorded in event counts")
	}
}

func TestFSRenameTorn(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, ".dest.bin.tmp-1")
	dst := filepath.Join(dir, "dest.bin")
	payload := strings.Repeat("payload!", 16)
	if err := writeThrough(vfs.OS, src, payload); err != nil {
		t.Fatal(err)
	}
	ffs := NewFS(vfs.OS, 4, FSProfile{RenameTornProb: 1})
	if err := ffs.Rename(src, dst); err != nil {
		t.Fatalf("rename-torn Rename must still report success (the lie), got %v", err)
	}
	raw, err := vfs.OS.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || len(raw) >= len(payload) {
		t.Fatalf("destination holds %d of %d bytes, want a strict prefix", len(raw), len(payload))
	}
	if string(raw) != payload[:len(raw)] {
		t.Fatal("destination is not a prefix of the source data")
	}
	_, _, counts := ffs.FSEvents()
	if counts["fsrenametorn"] != 1 {
		t.Fatalf("fsrenametorn count = %d, want 1", counts["fsrenametorn"])
	}
}

// SetActive(false) must make the decorator a passthrough without
// resetting the ordinal state, so a later re-enable continues the
// stream.
func TestFSSetActive(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFS(vfs.OS, 5, FSProfile{WriteErrProb: 1, ReadErrProb: 1})
	ffs.SetActive(false)
	if ffs.Active() {
		t.Fatal("Active() after SetActive(false)")
	}
	name := filepath.Join(dir, "calm.bin")
	if err := writeThrough(ffs, name, "calm"); err != nil {
		t.Fatalf("inactive decorator injected: %v", err)
	}
	if raw, err := ffs.ReadFile(name); err != nil || string(raw) != "calm" {
		t.Fatalf("inactive read = (%q, %v)", raw, err)
	}
	if _, _, counts := ffs.FSEvents(); len(counts) != 0 {
		t.Fatalf("inactive decorator recorded events: %v", counts)
	}
	ffs.SetActive(true)
	if _, err := ffs.Create(name); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("re-enabled Create = %v, want ENOSPC", err)
	}
}

func TestParseFSProfile(t *testing.T) {
	for _, name := range []string{"off", "fsflaky", "fstorn", "fsslow"} {
		if _, err := ParseFSProfile(name); err != nil {
			t.Errorf("ParseFSProfile(%q) = %v", name, err)
		}
	}
	if _, err := ParseFSProfile("bogus"); err == nil {
		t.Error("ParseFSProfile accepted an unknown profile")
	}
	p, _ := ParseFSProfile("fstorn")
	if p.WriteTornProb == 0 || p.RenameTornProb == 0 {
		t.Errorf("fstorn profile has zero torn probabilities: %+v", p)
	}
}
