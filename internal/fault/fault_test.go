package fault

import (
	"encoding/binary"
	"math"
	"testing"
	"time"
)

// Two plans with the same seed and profile must return identical
// verdicts for identical message coordinates — determinism is what lets
// chaos tests assert bitwise reproducibility.
func TestPlanDeterministic(t *testing.T) {
	prof, err := ParseProfile("chaos")
	if err != nil {
		t.Fatal(err)
	}
	a := NewPlan(42, prof)
	b := NewPlan(42, prof)
	buf := make([]byte, 64)
	for tag := 100; tag < 120; tag++ {
		for from := 0; from < 4; from++ {
			for attempt := 0; attempt < 3; attempt++ {
				d1, w1 := a.OnSend(from, (from+1)%4, tag, attempt, buf)
				d2, w2 := b.OnSend(from, (from+1)%4, tag, attempt, buf)
				if d1 != d2 || w1 != w2 {
					t.Fatalf("verdicts diverge at from=%d tag=%d attempt=%d: (%v,%v) vs (%v,%v)",
						from, tag, attempt, d1, w1, d2, w2)
				}
			}
		}
	}
}

// A different seed must change the fault pattern (otherwise the "seed"
// flag is a lie).
func TestPlanSeedMatters(t *testing.T) {
	prof, _ := ParseProfile("drop")
	a := NewPlan(1, prof)
	b := NewPlan(2, prof)
	buf := make([]byte, 8)
	diverged := false
	for tag := 100; tag < 400 && !diverged; tag++ {
		d1, _ := a.OnSend(0, 1, tag, 0, buf)
		d2, _ := b.OnSend(0, 1, tag, 0, buf)
		diverged = d1 != d2
	}
	if !diverged {
		t.Fatal("seeds 1 and 2 produced identical drop patterns over 300 messages")
	}
}

// Control-plane collectives (negative tags) must pass untouched under
// every profile.
func TestNegativeTagsExempt(t *testing.T) {
	prof := Profile{DropProb: 1, DelayProb: 1, MaxDelay: time.Second, FlipProb: 1}
	p := NewPlan(7, prof)
	buf := []byte{1, 2, 3, 4}
	orig := append([]byte(nil), buf...)
	for attempt := 0; attempt < 3; attempt++ {
		drop, delay := p.OnSend(0, 1, -7771, attempt, buf)
		if drop || delay != 0 {
			t.Fatalf("negative tag got drop=%v delay=%v", drop, delay)
		}
	}
	for i := range buf {
		if buf[i] != orig[i] {
			t.Fatal("negative-tag payload was corrupted")
		}
	}
}

// Bit-flips must actually change the decoded FP32 value, and the
// MaxFlips budget must hold across attempts and messages.
func TestBitFlipCorruptsAndHonorsBudget(t *testing.T) {
	p := NewPlan(3, Profile{FlipProb: 1, MaxFlips: 1, KillRank: -1})
	buf := make([]byte, 4*16)
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(buf[4*w:], math.Float32bits(1.0))
	}
	p.OnSend(0, 1, 100, 0, buf)
	changed := 0
	for w := 0; w < 16; w++ {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[4*w:]))
		if v != 1.0 {
			changed++
			if rel := math.Abs(float64(v) - 1.0); rel < 10 {
				t.Fatalf("exponent-MSB flip changed 1.0 to %g — expected a numerically loud change", v)
			}
		}
	}
	if changed == 0 {
		t.Fatal("FlipProb=1 corrupted no words")
	}
	if p.Flips() != 1 {
		t.Fatalf("Flips() = %d, want 1", p.Flips())
	}
	// Budget spent: further messages pass clean.
	clean := make([]byte, 4*16)
	for w := 0; w < 16; w++ {
		binary.LittleEndian.PutUint32(clean[4*w:], math.Float32bits(1.0))
	}
	p.OnSend(0, 1, 101, 0, clean)
	for w := 0; w < 16; w++ {
		if math.Float32frombits(binary.LittleEndian.Uint32(clean[4*w:])) != 1.0 {
			t.Fatal("MaxFlips=1 budget not honored: second message corrupted")
		}
	}
}

// The rank kill fires exactly once: a recovery leg replaying the same
// step must not re-kill the rank.
func TestKillFiresOnce(t *testing.T) {
	prof, _ := ParseProfile("rankdeath")
	p := NewPlan(5, prof)
	if p.PermitStep(0, prof.KillStep) != true {
		t.Fatal("non-victim rank was killed")
	}
	if p.PermitStep(prof.KillRank, prof.KillStep-1) != true {
		t.Fatal("victim killed before its step")
	}
	if p.PermitStep(prof.KillRank, prof.KillStep) != false {
		t.Fatal("victim not killed at its step")
	}
	if p.PermitStep(prof.KillRank, prof.KillStep) != true {
		t.Fatal("kill fired twice — replay would livelock")
	}
	ev, _ := p.Events()
	kills := 0
	for _, e := range ev {
		if e.Kind == "kill" {
			kills++
		}
	}
	if kills != 1 {
		t.Fatalf("recorded %d kill events, want 1", kills)
	}
}

func TestParseProfileUnknown(t *testing.T) {
	if _, err := ParseProfile("voltage-sag"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	for _, name := range []string{"off", "drop", "delay", "bitflip", "rankdeath", "chaos", "mlnan"} {
		if _, err := ParseProfile(name); err != nil {
			t.Fatalf("ParseProfile(%q): %v", name, err)
		}
	}
}

// MLOutputFault fires on exactly one call and writes NaN into the
// tendency buffer.
func TestMLOutputFault(t *testing.T) {
	f := MLOutputFault(9, 3)
	tend := make([]float64, 32)
	rad := make([]float64, 8)
	for call := 1; call <= 5; call++ {
		for i := range tend {
			tend[i] = 1
		}
		f(tend, rad)
		nans := 0
		for _, v := range tend {
			if math.IsNaN(v) {
				nans++
			}
		}
		if call == 3 && nans == 0 {
			t.Fatal("fault did not fire on its designated call")
		}
		if call != 3 && nans != 0 {
			t.Fatalf("fault fired on call %d, want only call 3", call)
		}
	}
}
