package physics

import (
	"math"
	"testing"
	"testing/quick"
)

// tropicalColumn fills column c of in with a moist tropical-ish sounding.
func tropicalColumn(in *Input, c int, tSfc, rh float64) {
	nlev := in.NLev
	const psfc, ptop = 1.0e5, 225.0
	dpi := (psfc - ptop) / float64(nlev)
	for k := 0; k < nlev; k++ {
		i := c*nlev + k
		p := ptop + (float64(k)+0.5)*dpi
		in.P[i] = p
		in.Dpi[i] = dpi
		// Linear-in-log-p temperature profile; relative humidity decays
		// with height like the real tropics (so theta_e decreases with
		// height in moist columns — conditional instability).
		in.T[i] = tSfc - 60*math.Log(psfc/p)/math.Log(psfc/ptop)
		sig := p / psfc
		in.Qv[i] = rh * sig * sig * sig * SatMixingRatio(in.T[i], p)
	}
	in.Tskin[c] = tSfc + 1
	in.CosZ[c] = 0.5
	in.Land[c] = 1
}

func TestSaturationVaporPressure(t *testing.T) {
	// Anchor points: ~611 Pa at 0C, ~2340 Pa at 20C, ~7400 Pa at 40C.
	cases := []struct{ tK, want, tol float64 }{
		{273.15, 611, 5},
		{293.15, 2339, 60},
		{313.15, 7375, 250},
	}
	for _, c := range cases {
		if got := SatVaporPressure(c.tK); math.Abs(got-c.want) > c.tol {
			t.Errorf("es(%v) = %v, want ~%v", c.tK, got, c.want)
		}
	}
}

func TestSatMixingRatioMonotone(t *testing.T) {
	f := func(t1, t2 float64) bool {
		// Map to a sane range.
		a := 200 + math.Mod(math.Abs(t1), 120)
		b := 200 + math.Mod(math.Abs(t2), 120)
		if a > b {
			a, b = b, a
		}
		const p = 9e4
		return SatMixingRatio(a, p) <= SatMixingRatio(b, p)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRadiationEnergyDirections(t *testing.T) {
	nlev := 10
	in := NewInput(2, nlev)
	tropicalColumn(in, 0, 300, 0.7)
	tropicalColumn(in, 1, 300, 0.7)
	in.CosZ[1] = 0 // night column
	out := NewOutput(2, nlev)
	rad := NewRadiation(nlev)
	rad.Compute(in, out)

	if out.Gsw[0] <= 0 {
		t.Error("day column has no surface shortwave")
	}
	if out.Gsw[1] != 0 {
		t.Errorf("night column gets shortwave %v", out.Gsw[1])
	}
	if out.Glw[0] <= 0 || out.Glw[1] <= 0 {
		t.Error("downward longwave missing")
	}
	// Surface SW must be below TOA insolation.
	if out.Gsw[0] >= Solar*in.CosZ[0] {
		t.Errorf("gsw %v exceeds TOA %v", out.Gsw[0], Solar*in.CosZ[0])
	}
	// Clear-sky longwave cooling: column-mean LW Q1 of the night column
	// should be negative (radiative cooling).
	var mean float64
	for k := 0; k < nlev; k++ {
		mean += out.Q1[1*nlev+k]
	}
	if mean/float64(nlev) >= 0 {
		t.Errorf("night column does not cool radiatively: mean Q1 = %g", mean/float64(nlev))
	}
}

func TestRadiationMoreVaporMoreGreenhouse(t *testing.T) {
	nlev := 10
	in := NewInput(2, nlev)
	tropicalColumn(in, 0, 300, 0.2)
	tropicalColumn(in, 1, 300, 0.9)
	out := NewOutput(2, nlev)
	NewRadiation(nlev).Compute(in, out)
	if out.Glw[1] <= out.Glw[0] {
		t.Errorf("moist column glw %v <= dry column %v", out.Glw[1], out.Glw[0])
	}
}

func TestConvectionDriesAndWarms(t *testing.T) {
	nlev := 10
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 305, 0.95)
	out := NewOutput(1, nlev)
	NewConvection().Compute(in, out, 600)

	if out.Precip[0] <= 0 {
		t.Fatal("unstable moist column did not precipitate")
	}
	var q1, q2 float64
	for k := nlev / 2; k < nlev; k++ {
		q1 += out.Q1[k]
		q2 += out.Q2[k]
	}
	if q1 <= 0 {
		t.Errorf("no convective heating: %g", q1)
	}
	if q2 >= 0 {
		t.Errorf("no convective drying: %g", q2)
	}
}

func TestConvectionSkipsStableDryColumn(t *testing.T) {
	nlev := 10
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 280, 0.3)
	out := NewOutput(1, nlev)
	NewConvection().Compute(in, out, 600)
	if out.Precip[0] != 0 {
		t.Errorf("stable dry column precipitated: %v", out.Precip[0])
	}
}

func TestMicrophysicsCondensesSupersaturation(t *testing.T) {
	nlev := 6
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 295, 0.8)
	// Force supersaturation at one level.
	k := 3
	in.Qv[k] = 1.3 * SatMixingRatio(in.T[k], in.P[k])
	out := NewOutput(1, nlev)
	dt := 600.0
	NewMicrophysics().Compute(in, out, dt)

	if out.Cond[k] <= 0 {
		t.Fatal("no condensate production from supersaturated layer")
	}
	if out.Q1[k] <= 0 {
		t.Error("no latent heating at the condensing level")
	}
	if out.Q2[k] >= 0 {
		t.Error("no drying at the condensing level")
	}
	// Removing all tendency moisture must not overshoot below saturation
	// by more than the 1/(1+gamma) correction implies.
	qAfter := in.Qv[k] + out.Q2[k]*dt
	if qAfter < 0.9*SatMixingRatio(in.T[k], in.P[k]) {
		t.Errorf("condensation overshoot: q after = %g", qAfter)
	}
}

func TestPBLMixesGradientsDown(t *testing.T) {
	nlev := 10
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 300, 0.5)
	// Sharpen a moisture contrast near the surface.
	in.Qv[nlev-1] = 0.020
	in.Qv[nlev-2] = 0.004
	out := NewOutput(1, nlev)
	NewBoundaryLayer().Compute(in, out, 600)
	if out.Q2[nlev-1] >= 0 {
		t.Error("moist lowest layer should dry by mixing")
	}
	if out.Q2[nlev-2] <= 0 {
		t.Error("dry layer above should moisten by mixing")
	}
	// Mixing conserves column moisture: sum(dq*dpi) ~ 0.
	var sum float64
	for k := 0; k < nlev; k++ {
		sum += out.Q2[k] * in.Dpi[k]
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("PBL moisture not conserved: %g", sum)
	}
}

func TestSurfaceFluxesWarmColdAir(t *testing.T) {
	nlev := 8
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 290, 0.5)
	in.Tskin[0] = 300 // warm ground under cooler air
	out := NewOutput(1, nlev)
	NewSurface().Compute(in, out, 600)
	if out.Q1[nlev-1] <= 0 {
		t.Error("warm surface should heat the lowest layer")
	}
	if out.Q2[nlev-1] <= 0 {
		t.Error("evaporation should moisten the lowest layer")
	}
}

func TestSkinTemperatureRelaxesTowardEquilibrium(t *testing.T) {
	nlev := 8
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 300, 0.6)
	in.Tskin[0] = 240 // very cold surface under warm air + sun
	out := NewOutput(1, nlev)
	suite := NewConventional(nlev)
	t0 := in.Tskin[0]
	for i := 0; i < 20; i++ {
		suite.Compute(in, out, 600)
	}
	if in.Tskin[0] <= t0 {
		t.Errorf("cold sunlit surface did not warm: %v -> %v", t0, in.Tskin[0])
	}
	if in.Tskin[0] > 400 {
		t.Errorf("runaway skin temperature: %v", in.Tskin[0])
	}
}

func TestConventionalSuiteProducesBalancedColumnBudget(t *testing.T) {
	// Column moisture removed by Q2 (convection + microphysics) must be
	// accounted for: convective rain leaves immediately through Precip,
	// large-scale condensation enters the condensate chain through Cond.
	nlev := 12
	in := NewInput(1, nlev)
	tropicalColumn(in, 0, 304, 0.97)
	out := NewOutput(1, nlev)
	dt := 600.0
	conv := NewConvection()
	mic := NewMicrophysics()
	conv.Compute(in, out, dt)
	mic.Compute(in, out, dt)

	var colDrying, colCond float64 // kg/m^2/s
	for k := 0; k < nlev; k++ {
		colDrying += -out.Q2[k] * in.Dpi[k] / 9.80616
		colCond += out.Cond[k] * in.Dpi[k] / 9.80616
	}
	precipKgMS := out.Precip[0] / 86400
	if math.Abs(colDrying-(precipKgMS+colCond)) > 1e-9*(1+math.Abs(precipKgMS)) {
		t.Errorf("drying %g != precip %g + condensate %g", colDrying, precipKgMS, colCond)
	}
}

func TestSchemeInterface(t *testing.T) {
	var s Scheme = NewConventional(8)
	if s.Name() != "Conventional" {
		t.Errorf("name = %q", s.Name())
	}
	in := NewInput(3, 8)
	for c := 0; c < 3; c++ {
		tropicalColumn(in, c, 298+float64(c), 0.8)
	}
	out := NewOutput(3, 8)
	s.Compute(in, out, 600)
	for i, q := range out.Q1 {
		if math.IsNaN(q) {
			t.Fatalf("NaN Q1 at %d", i)
		}
	}
}
