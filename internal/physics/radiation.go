package physics

import "math"

// Radiation is a two-stream grey radiation scheme with an RRTMG-style
// spectral band loop: NumBands shortwave and longwave bands, each with
// its own absorption coefficients, computed per layer with explicit
// exponentials. Like RRTMG it is memory-light but branch- and
// transcendental-heavy, which is what keeps it near 6% of peak FLOPS on
// the MPE (the figure the paper quotes when motivating the ML radiation
// module, §4.7).
type Radiation struct {
	nlev int

	// Per-band absorption parameters.
	swWeight []float64 // fraction of solar flux per band
	swKdry   []float64 // dry absorption per Pa
	swKvap   []float64 // vapor absorption per (kg/kg * Pa)
	lwWeight []float64
	lwKdry   []float64
	lwKvap   []float64
}

// NumBands is the number of spectral bands per stream, matching RRTMG's
// 16-band structure.
const NumBands = 16

// NewRadiation builds the banded grey scheme.
func NewRadiation(nlev int) *Radiation {
	r := &Radiation{
		nlev:     nlev,
		swWeight: make([]float64, NumBands),
		swKdry:   make([]float64, NumBands),
		swKvap:   make([]float64, NumBands),
		lwWeight: make([]float64, NumBands),
		lwKdry:   make([]float64, NumBands),
		lwKvap:   make([]float64, NumBands),
	}
	var wsum float64
	for b := 0; b < NumBands; b++ {
		// Band weights decay across the spectrum; absorption varies by
		// orders of magnitude between window and vapor bands.
		w := math.Exp(-0.25 * float64(b))
		r.swWeight[b] = w
		r.lwWeight[b] = w
		wsum += w
		x := float64(b) / float64(NumBands-1)
		r.swKdry[b] = 2e-7 * (0.3 + x)
		r.swKvap[b] = 4e-4 * math.Pow(10, 2*x-1)
		r.lwKdry[b] = 6e-7 * (0.5 + x)
		r.lwKvap[b] = 2.5e-3 * math.Pow(10, 2*x-1.3)
	}
	for b := 0; b < NumBands; b++ {
		r.swWeight[b] /= wsum
		r.lwWeight[b] /= wsum
	}
	return r
}

// Compute adds radiative heating to out.Q1 and fills the surface
// radiation diagnostics gsw/glw.
func (r *Radiation) Compute(in *Input, out *Output) {
	nlev := r.nlev
	for c := 0; c < in.NCol; c++ {
		base := c * nlev

		// --- Shortwave: banded beam absorption top-down. ---
		mu := in.CosZ[c]
		var gsw, swHeat float64
		if mu > 1e-4 {
			for b := 0; b < NumBands; b++ {
				flux := Solar * mu * r.swWeight[b]
				for k := 0; k < nlev; k++ {
					tau := (r.swKdry[b] + r.swKvap[b]*in.Qv[base+k]) * in.Dpi[base+k]
					trans := math.Exp(-tau / mu)
					absorbed := flux * (1 - trans)
					// Heating rate: dT/dt = g*F_abs/(cp*dpi).
					out.Q1[base+k] += 9.80616 * absorbed / (Cp * in.Dpi[base+k])
					flux *= trans
					_ = swHeat
				}
				gsw += flux
			}
		}
		out.Gsw[c] = gsw

		// --- Longwave: banded two-stream emission/absorption. ---
		var glw float64
		for b := 0; b < NumBands; b++ {
			// Downward pass.
			down := 0.0
			for k := 0; k < nlev; k++ {
				tau := (r.lwKdry[b] + r.lwKvap[b]*in.Qv[base+k]) * in.Dpi[base+k]
				emis := 1 - math.Exp(-tau)
				bb := r.lwWeight[b] * Sigma * pow4(in.T[base+k])
				newDown := down*(1-emis) + bb*emis
				// Layer heating from net absorbed downward flux.
				out.Q1[base+k] += 9.80616 * (down*emis - bb*emis) / (Cp * in.Dpi[base+k])
				down = newDown
			}
			glw += down
			// Upward pass from the surface.
			up := r.lwWeight[b] * Sigma * pow4(in.Tskin[c])
			for k := nlev - 1; k >= 0; k-- {
				tau := (r.lwKdry[b] + r.lwKvap[b]*in.Qv[base+k]) * in.Dpi[base+k]
				emis := 1 - math.Exp(-tau)
				bb := r.lwWeight[b] * Sigma * pow4(in.T[base+k])
				out.Q1[base+k] += 9.80616 * (up*emis - bb*emis) / (Cp * in.Dpi[base+k])
				up = up*(1-emis) + bb*emis
			}
		}
		out.Glw[c] = glw
	}
}

func pow4(x float64) float64 {
	x2 := x * x
	return x2 * x2
}

// FlopsPerColumn estimates the floating-point work of one radiated
// column — used by the performance model to contrast RRTMG-style
// radiation (low achieved FLOPS fraction) with the ML radiation module.
func (r *Radiation) FlopsPerColumn() float64 {
	// 3 passes x NumBands x nlev x ~12 flops (incl. exp ~ 4 flop-equiv).
	return float64(3 * NumBands * r.nlev * 12)
}
