package physics

import "math"

// Convection is a Betts-Miller-style moist convective adjustment: where a
// column is conditionally unstable and moist enough, temperature and
// moisture relax toward a moist-adiabatic reference profile over a fixed
// timescale, and the removed moisture rains out.
type Convection struct {
	Tau      float64 // adjustment timescale, s
	RhCrit   float64 // relative-humidity trigger
	RhTarget float64 // post-adjustment reference humidity
}

// NewConvection returns the scheme with standard parameters.
func NewConvection() *Convection {
	return &Convection{Tau: 7200, RhCrit: 0.75, RhTarget: 0.7}
}

// Compute adds convective tendencies to out and accumulates surface
// precipitation.
func (cv *Convection) Compute(in *Input, out *Output, dt float64) {
	nlev := in.NLev
	for c := 0; c < in.NCol; c++ {
		base := c * nlev

		// Closure: a smooth CAPE-like intensity rather than a binary
		// trigger, so convection persists at partial strength while
		// surface fluxes keep a column near moist-neutral (real tropics
		// rain continuously, not in a single adjustment burst).
		kSfc := nlev - 1
		kMid := nlev / 2
		thetaLow := theta(in.T[base+kSfc], in.P[base+kSfc])
		thetaMid := theta(in.T[base+kMid], in.P[base+kMid])
		rhLow := in.Qv[base+kSfc] / SatMixingRatio(in.T[base+kSfc], in.P[base+kSfc])
		instab := (thetaLow + Lv/Cp*in.Qv[base+kSfc]) - (thetaMid + Lv/Cp*in.Qv[base+kMid])
		sI := clamp01(instab / 8)
		sRH := clamp01((rhLow - (cv.RhCrit - 0.15)) / 0.3)
		strength := sI * sRH
		if strength <= 0 {
			continue
		}

		// Reference: moist adiabat anchored at the lifted surface parcel.
		var rain float64 // Pa * kg/kg of column moisture removed per second
		for k := kMid; k < nlev; k++ {
			qsat := SatMixingRatio(in.T[base+k], in.P[base+k])
			qRef := cv.RhTarget * qsat
			dq := strength * (qRef - in.Qv[base+k]) / cv.Tau // negative: drying
			if dq > 0 {
				dq = 0 // convection only dries
			}
			// Latent heating balances the drying.
			out.Q2[base+k] += dq
			out.Q1[base+k] += -Lv / Cp * dq * 0.8 // bulk condensation efficiency
			rain += -dq * in.Dpi[base+k]
		}
		// Column rain (kg/m^2/s = mm/s): dpi/g * dq/dt summed.
		out.Precip[c] += rain / 9.80616 * 86400 // to mm/day
	}
}

// Microphysics is a bulk large-scale condensation scheme: saturation
// adjustment with latent heating; excess condensate precipitates.
type Microphysics struct {
	RhSat float64 // grid-scale saturation threshold
}

// NewMicrophysics returns the scheme with standard parameters: a
// Sundqvist-style critical relative humidity below one, so stratiform
// condensation begins before full grid-scale saturation (coarse cells
// are never uniformly saturated).
func NewMicrophysics() *Microphysics {
	return &Microphysics{RhSat: 0.85}
}

// Compute adds large-scale condensation tendencies.
func (mp *Microphysics) Compute(in *Input, out *Output, dt float64) {
	nlev := in.NLev
	for c := 0; c < in.NCol; c++ {
		base := c * nlev
		var rain float64
		for k := 0; k < nlev; k++ {
			qsat := mp.RhSat * SatMixingRatio(in.T[base+k], in.P[base+k])
			if in.Qv[base+k] <= qsat {
				continue
			}
			// Condense with the classic 1/(1+gamma) correction where
			// gamma = L/cp * dqsat/dT.
			dqsatdT := qsat * Lv / (461.5 * in.T[base+k] * in.T[base+k])
			gamma := Lv / Cp * dqsatdT
			cond := (in.Qv[base+k] - qsat) / (1 + gamma) / dt
			out.Q2[base+k] -= cond
			out.Q1[base+k] += Lv / Cp * cond
			// Large-scale condensation feeds the cloud condensate
			// tracer; rain forms later by autoconversion in the cloud
			// chain (core.applyPhysicsOutput), not instantly.
			out.Cond[base+k] += cond
			rain += cond * in.Dpi[base+k]
		}
		_ = rain
	}
}

// BoundaryLayer is a K-profile vertical diffusion of heat and moisture
// with an implicit tridiagonal solve per column.
type BoundaryLayer struct {
	KMax  float64 // peak eddy diffusivity, m^2/s
	Depth int     // number of layers (from the surface) in the PBL
}

// NewBoundaryLayer returns the scheme with standard parameters.
func NewBoundaryLayer() *BoundaryLayer {
	return &BoundaryLayer{KMax: 30, Depth: 6}
}

// Compute adds PBL mixing tendencies for theta-like temperature and
// moisture (free troposphere untouched).
func (bl *BoundaryLayer) Compute(in *Input, out *Output, dt float64) {
	nlev := in.NLev
	depth := bl.Depth
	if depth > nlev-1 {
		depth = nlev - 1
	}
	for c := 0; c < in.NCol; c++ {
		base := c * nlev
		// Simple explicit down-gradient mixing between adjacent PBL
		// layers; the K-profile rises toward the surface.
		for k := nlev - depth; k < nlev-1; k++ {
			// Approximate layer thickness from hydrostatic: dz = Rd*T*dpi/(g*p).
			dz := Rd * in.T[base+k] * in.Dpi[base+k] / (9.80616 * in.P[base+k])
			frac := float64(k-(nlev-depth)) / float64(depth)
			kEddy := bl.KMax * (0.2 + 0.8*frac)
			rate := kEddy / (dz * dz)
			if rate*dt > 0.25 {
				rate = 0.25 / dt // stability clamp
			}
			dTheta := theta(in.T[base+k+1], in.P[base+k+1]) - theta(in.T[base+k], in.P[base+k])
			dQ := in.Qv[base+k+1] - in.Qv[base+k]
			out.Q1[base+k] += rate * dTheta * exner(in.P[base+k])
			out.Q1[base+k+1] -= rate * dTheta * exner(in.P[base+k+1])
			out.Q2[base+k] += rate * dQ
			out.Q2[base+k+1] -= rate * dQ
		}
	}
}

// Surface is the surface-layer + slab-land scheme (the Noah-MP
// substitute): bulk sensible/latent fluxes into the lowest layer and a
// prognostic skin temperature driven by the radiation diagnostics.
type Surface struct {
	Cd       float64 // bulk transfer coefficient
	SlabHeat float64 // areal heat capacity of the slab, J/m^2/K
}

// NewSurface returns the scheme with standard parameters.
func NewSurface() *Surface {
	return &Surface{Cd: 1.3e-3, SlabHeat: 2e5}
}

// Compute applies surface fluxes to the lowest layer and advances the
// skin temperature (in.Tskin is updated in place — the land state is
// prognostic, as with Noah-MP).
func (sf *Surface) Compute(in *Input, out *Output, dt float64) {
	nlev := in.NLev
	for c := 0; c < in.NCol; c++ {
		k := nlev - 1
		i := c*nlev + k
		wind := math.Hypot(in.U[i], in.V[i]) + 1.0
		rhoAir := in.P[i] / (Rd * in.T[i])

		// Bulk fluxes (positive upward, W/m^2).
		sh := rhoAir * Cp * sf.Cd * wind * (in.Tskin[c] - in.T[i])
		qsatS := SatMixingRatio(in.Tskin[c], in.P[i])
		beta := 0.45 + 0.45*(1-in.Land[c]) // ocean evaporates more freely
		lh := rhoAir * Lv * sf.Cd * wind * beta * (qsatS - in.Qv[i])
		if lh < 0 {
			lh = 0
		}

		// Lowest-layer tendencies: dT/dt = g*SH/(cp*dpi).
		out.Q1[i] += 9.80616 * sh / (Cp * in.Dpi[i])
		out.Q2[i] += 9.80616 * lh / (Lv * in.Dpi[i])

		// Slab energy balance with the radiation diagnostics (the land
		// model consumes gsw/glw — exactly the coupling the ML radiation
		// module must reproduce, §3.2.3).
		net := out.Gsw[c]*(1-Albedo) + out.Glw[c] - Sigma*pow4(in.Tskin[c]) - sh - lh
		in.Tskin[c] += dt * net / sf.SlabHeat
	}
}

func theta(tK, p float64) float64 { return tK * math.Pow(1e5/p, Rd/Cp) }

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
func exner(p float64) float64 { return math.Pow(p/1e5, Rd/Cp) }
