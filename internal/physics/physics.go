// Package physics implements the conventional physics suite of the model
// (Fig. 3 of the paper, right side): radiation with an RRTMG-style
// spectral band loop, a mass-flux/adjustment convection scheme, bulk
// cloud microphysics, boundary-layer vertical diffusion, a surface layer
// and a slab land model (the Noah-MP substitute).
//
// The package also defines the physics-dynamics coupling contract shared
// with the ML physics suite (package mlphysics): a Scheme consumes the
// column Input (U, V, T, Q, P, tskin, coszr — §3.2.4) and produces the
// total physical tendencies Q1/Q2 plus the radiation diagnostics gsw/glw
// and surface precipitation.
package physics

import "math"

// Thermodynamic constants shared with the dynamical core.
const (
	Rd     = 287.04
	Cp     = 1004.64
	Lv     = 2.501e6 // latent heat of vaporization, J/kg
	Sigma  = 5.67e-8 // Stefan-Boltzmann
	Solar  = 1361.0  // solar constant, W/m^2
	Albedo = 0.3     // bulk planetary surface albedo
	Eps    = 0.622   // Rd/Rv
)

// Input is the physics-dynamics coupling state handed to a Scheme:
// column-major arrays [c*NLev+k] with level 0 at the model top, plus
// per-cell surface scalars.
type Input struct {
	NCol, NLev int

	T   []float64 // temperature, K
	Qv  []float64 // water vapor mixing ratio, kg/kg
	P   []float64 // mid-layer pressure, Pa
	Dpi []float64 // layer dry-mass thickness, Pa
	U   []float64 // zonal wind at cells, m/s
	V   []float64 // meridional wind at cells, m/s

	Tskin []float64 // surface skin temperature, K
	CosZ  []float64 // cosine of the solar zenith angle
	Land  []float64 // land fraction (0..1), affects Bowen ratio
}

// NewInput allocates an Input for ncol columns of nlev layers.
func NewInput(ncol, nlev int) *Input {
	n := ncol * nlev
	return &Input{
		NCol: ncol, NLev: nlev,
		T: make([]float64, n), Qv: make([]float64, n),
		P: make([]float64, n), Dpi: make([]float64, n),
		U: make([]float64, n), V: make([]float64, n),
		Tskin: make([]float64, ncol), CosZ: make([]float64, ncol),
		Land: make([]float64, ncol),
	}
}

// Output carries the physics results back across the coupling interface:
// the total apparent heat source Q1 (K/s) and apparent moisture sink Q2
// (expressed as a moistening rate dq/dt, kg/kg/s), the surface radiation
// diagnostics for the land model, and the surface precipitation rate.
type Output struct {
	Q1     []float64 // temperature tendency, K/s
	Q2     []float64 // moisture tendency, kg/kg/s
	Cond   []float64 // condensate production rate, kg/kg/s (vapor -> cloud)
	Gsw    []float64 // surface downward shortwave, W/m^2
	Glw    []float64 // surface downward longwave, W/m^2
	Precip []float64 // surface precipitation rate, mm/day
}

// NewOutput allocates an Output matching an Input's shape.
func NewOutput(ncol, nlev int) *Output {
	return &Output{
		Q1:     make([]float64, ncol*nlev),
		Q2:     make([]float64, ncol*nlev),
		Cond:   make([]float64, ncol*nlev),
		Gsw:    make([]float64, ncol),
		Glw:    make([]float64, ncol),
		Precip: make([]float64, ncol),
	}
}

// Reset zeroes an Output for reuse.
func (o *Output) Reset() {
	for i := range o.Q1 {
		o.Q1[i] = 0
		o.Q2[i] = 0
		o.Cond[i] = 0
	}
	for c := range o.Gsw {
		o.Gsw[c] = 0
		o.Glw[c] = 0
		o.Precip[c] = 0
	}
}

// Scheme is the physics suite contract shared by the conventional and
// ML-based suites.
type Scheme interface {
	// Compute evaluates the suite over dt and fills out.
	Compute(in *Input, out *Output, dt float64)
	// Name identifies the suite ("Conventional" or "ML-physics").
	Name() string
}

// SatVaporPressure returns the saturation vapor pressure over water
// (Tetens formula), Pa.
func SatVaporPressure(tK float64) float64 {
	tc := tK - 273.15
	return 610.78 * math.Exp(17.27*tc/(tc+237.3))
}

// SatMixingRatio returns the saturation mixing ratio at (T, p).
func SatMixingRatio(tK, p float64) float64 {
	es := SatVaporPressure(tK)
	if es > 0.5*p {
		es = 0.5 * p
	}
	return Eps * es / (p - es)
}

// Conventional is the conventional parameterization suite.
type Conventional struct {
	rad  *Radiation
	conv *Convection
	mic  *Microphysics
	pbl  *BoundaryLayer
	sfc  *Surface
}

// NewConventional builds the conventional suite with default parameters.
func NewConventional(nlev int) *Conventional {
	return &Conventional{
		rad:  NewRadiation(nlev),
		conv: NewConvection(),
		mic:  NewMicrophysics(),
		pbl:  NewBoundaryLayer(),
		sfc:  NewSurface(),
	}
}

// Name implements Scheme.
func (s *Conventional) Name() string { return "Conventional" }

// Compute runs the process chain: radiation -> surface fluxes -> PBL
// diffusion -> convection -> large-scale microphysics, accumulating all
// temperature and moisture tendencies into Q1/Q2.
func (s *Conventional) Compute(in *Input, out *Output, dt float64) {
	out.Reset()
	s.rad.Compute(in, out)
	s.sfc.Compute(in, out, dt)
	s.pbl.Compute(in, out, dt)
	s.conv.Compute(in, out, dt)
	s.mic.Compute(in, out, dt)
}

// Radiation returns the radiation sub-scheme (used by the ML training
// pipeline, which learns the radiation diagnostics separately).
func (s *Conventional) Radiation() *Radiation { return s.rad }

// Null is the no-op physics suite: it produces zero tendencies, giving a
// dynamics-only model. The residual-method training pipeline uses it to
// isolate the resolved dynamical tendency (§3.2.2), and Table 3 ablations
// use it for dycore-only timing.
type Null struct{}

// Name implements Scheme.
func (Null) Name() string { return "None" }

// Compute implements Scheme: all tendencies zero.
func (Null) Compute(in *Input, out *Output, dt float64) { out.Reset() }
