package experiments

// Chaos experiment: the resilience layer exercised end to end under
// seeded fault injection, distilled into two JSON artifacts the CI
// chaos job uploads — CHAOS_recovery.json (recovery events, injected
// faults, the bitwise verdict and the resilience counters) and
// CHAOS_sentinels.json (the health monitor's trip history). Three legs:
//
//  1. rank death: a rank dies mid-run; the run rolls back to the last
//     committed checkpoint epoch, replays, and must finish bitwise
//     identical to an undisturbed run;
//  2. bit flip: a corrupted halo payload trips the mass sentinel, the
//     poisoned leg is rolled back, and the replay (the flip budget is
//     spent) must again match the clean run bitwise;
//  3. ML NaN: a poisoned inference batch must fall back to the scalar
//     oracle with zero NaNs reaching the physics output.

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"gristgo/internal/coarse"
	"gristgo/internal/core"
	"gristgo/internal/diag"
	"gristgo/internal/dycore"
	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/mlphysics"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// ChaosConfig drives the chaos experiment.
type ChaosConfig struct {
	GridLevel int
	NLev      int
	NParts    int
	Steps     int
	CkptEvery int
	Seed      int64
	Dir       string // scratch + artifact directory
}

// DefaultChaosConfig returns the CI-scale setup.
func DefaultChaosConfig() ChaosConfig {
	return ChaosConfig{GridLevel: 3, NLev: 4, NParts: 4, Steps: 9, CkptEvery: 3, Seed: 7}
}

// ChaosLeg is one fault scenario's outcome.
type ChaosLeg struct {
	Profile     string               `json:"profile"`
	Bitwise     bool                 `json:"bitwise_vs_clean"` // final state matches the uninjected run
	Attempts    int                  `json:"attempts"`
	Recoveries  int                  `json:"recoveries"`
	Events      []core.RecoveryEvent `json:"events,omitempty"`
	Faults      []fault.Event        `json:"injected_faults,omitempty"`
	FaultsExtra int                  `json:"injected_faults_overflow,omitempty"`
	Err         string               `json:"error,omitempty"`
}

// ChaosResult is the JSON payload of CHAOS_recovery.json.
type ChaosResult struct {
	Seed            int64    `json:"seed"`
	RankDeath       ChaosLeg `json:"rank_death"`
	BitFlip         ChaosLeg `json:"bit_flip"`
	RecoveryTotal   int64    `json:"grist_recovery_total"`
	RankFailures    int64    `json:"grist_rank_failures_total"`
	CkptEpochs      int64    `json:"grist_checkpoint_epochs_total"`
	SentinelTrips   int64    `json:"grist_sentinel_trips_total"`
	MLFallbacks     int64    `json:"grist_physics_fallback_total"`
	MLOutputsFinite bool     `json:"ml_outputs_finite"`
}

// chaosInit is the shared initial condition: a thermal bubble riding a
// solid-body wind, the same flow the resilience tests integrate.
func chaosInit(s *dycore.State) {
	s.IsothermalRest(295)
	s.AddThermalBubble(0.4, 1.2, 0.25, 4)
	s.AddSolidBodyWind(18)
}

// statesBitwise compares every prognostic field of two states exactly.
func statesBitwise(a, b *dycore.State) bool {
	fields := [][2][]float64{
		{a.DryMass, b.DryMass}, {a.ThetaM, b.ThetaM},
		{a.U, b.U}, {a.W, b.W}, {a.Phi, b.Phi},
	}
	for _, f := range fields {
		for i := range f[0] {
			if math.Float64bits(f[0][i]) != math.Float64bits(f[1][i]) {
				return false
			}
		}
	}
	return true
}

// runChaosLeg runs one resilient integration under plan and compares it
// to the clean reference state.
func runChaosLeg(m *mesh.Mesh, cfg ChaosConfig, mode precision.Mode, clean *dycore.State,
	plan *fault.Plan, dir string, mon *diag.HealthMonitor, reg *telemetry.Registry) ChaosLeg {

	leg := ChaosLeg{Profile: plan.Prof.Name}
	final, rep, err := core.RunDistributedDynamicsResilient(m, cfg.NLev, cfg.NParts, chaosInit,
		cfg.Steps, 60.0, core.ResilienceOpts{
			Mode: mode, Injector: plan,
			CheckpointEvery: cfg.CkptEvery, Dir: dir,
			HaloTimeout: 2 * time.Second, SyncTimeout: 2 * time.Second,
			Monitor: mon, Reg: reg,
		})
	leg.Attempts, leg.Recoveries, leg.Events = rep.Attempts, rep.Recoveries, rep.Events
	leg.Faults, leg.FaultsExtra = plan.Events()
	if err != nil {
		leg.Err = err.Error()
		return leg
	}
	leg.Bitwise = statesBitwise(final, clean)
	return leg
}

// chaosSamples is a compact synthetic training set for the ML leg (the
// same construction the mlphysics tests train on).
func chaosSamples(n, nlev int, seed int64) []*coarse.Sample {
	rng := rand.New(rand.NewSource(seed))
	var out []*coarse.Sample
	for i := 0; i < n; i++ {
		s := &coarse.Sample{
			U: make([]float64, nlev), V: make([]float64, nlev),
			T: make([]float64, nlev), Q: make([]float64, nlev),
			P: make([]float64, nlev), Q1: make([]float64, nlev), Q2: make([]float64, nlev),
		}
		tSfc := 285 + 20*rng.Float64()
		moist := rng.Float64()
		for k := 0; k < nlev; k++ {
			p := 22500 + float64(k)/float64(nlev-1)*75000
			s.P[k] = p
			s.T[k] = tSfc - 55*math.Log(1e5/p)
			s.Q[k] = moist * 0.02 * math.Pow(p/1e5, 3)
			s.U[k] = 10 * rng.NormFloat64()
			s.V[k] = 5 * rng.NormFloat64()
			s.Q1[k] = 2e-5 * moist * math.Sin(math.Pi*float64(k)/float64(nlev-1))
			s.Q2[k] = -1e-8 * moist * s.Q[k] / 0.02 * 1e3
		}
		s.Tskin = tSfc + 2*rng.NormFloat64()
		s.CosZ = rng.Float64()
		s.Gsw = 1000 * s.CosZ * (1 - 0.3*moist)
		s.Glw = 300 + 150*moist + 2*(s.Tskin-290)
		s.Precip = 20 * moist * moist
		out = append(out, s)
	}
	return out
}

// runMLNaNLeg trains a tiny suite, poisons one inference batch, and
// verifies the scalar fallback keeps every output finite.
func runMLNaNLeg(seed int64, reg *telemetry.Registry) (fallbacks int64, finite bool) {
	const nlev, ncol, calls = 6, 16, 3
	cfg := mlphysics.DefaultTrainConfig()
	cfg.Epochs = 6
	suite, _, _ := mlphysics.Train(chaosSamples(120, nlev, seed), nil, nlev, cfg)
	suite.SetTelemetry(nil, reg)
	suite.SetOutputFault(fault.MLOutputFault(seed, 2))

	in := physics.NewInput(ncol, nlev)
	for c := 0; c < ncol; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 22500 + float64(k)/float64(nlev-1)*75000
			in.P[i], in.Dpi[i] = p, 97750.0/float64(nlev)
			in.T[i] = 295 - 55*math.Log(1e5/p)
			in.Qv[i] = 0.012 * math.Pow(p/1e5, 3)
			in.U[i], in.V[i] = 8*math.Sin(float64(i)), 4*math.Cos(float64(i))
		}
		in.Tskin[c], in.CosZ[c] = 300, 0.5
	}
	finite = true
	for call := 0; call < calls; call++ {
		out := physics.NewOutput(ncol, nlev)
		suite.Compute(in, out, 600)
		for _, xs := range [][]float64{out.Q1, out.Q2, out.Gsw, out.Glw, out.Precip} {
			if diag.NonFiniteCount(xs) > 0 {
				finite = false
			}
		}
	}
	return suite.FallbackCount(), finite
}

// RunChaos runs all three fault legs and returns the distilled result
// plus the sentinel trip history.
func RunChaos(cfg ChaosConfig) (ChaosResult, []diag.HealthEvent) {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	reg := telemetry.NewRegistry()
	mon := diag.NewHealthMonitor(reg, nil)
	res := ChaosResult{Seed: cfg.Seed}

	// Clean references, one per precision mode the legs integrate in.
	cleanDP := core.RunDistributedDynamics(m, cfg.NLev, cfg.NParts, precision.DP, chaosInit, cfg.Steps, 60.0)
	cleanMix := core.RunDistributedDynamics(m, cfg.NLev, cfg.NParts, precision.Mixed, chaosInit, cfg.Steps, 60.0)

	// Leg 1: rank death -> rollback to the last committed epoch.
	prof, _ := fault.ParseProfile("rankdeath")
	res.RankDeath = runChaosLeg(m, cfg, precision.DP, cleanDP,
		fault.NewPlan(cfg.Seed, prof), filepath.Join(cfg.Dir, "ckpt-rankdeath"), nil, reg)

	// Leg 2: one FP32 bit-flip on a halo payload -> mass sentinel trips,
	// the poisoned leg rolls back, the replay is clean (budget spent).
	res.BitFlip = runChaosLeg(m, cfg, precision.Mixed, cleanMix,
		fault.NewPlan(cfg.Seed, fault.Profile{Name: "bitflip", FlipProb: 1, MaxFlips: 1, KillRank: -1}),
		filepath.Join(cfg.Dir, "ckpt-bitflip"), mon, reg)

	// Leg 3: NaN in an ML inference batch -> scalar-oracle fallback.
	res.MLFallbacks, res.MLOutputsFinite = runMLNaNLeg(cfg.Seed, reg)

	res.RecoveryTotal = reg.Counter("grist_recovery_total").Value()
	res.RankFailures = reg.Counter("grist_rank_failures_total").Value()
	res.CkptEpochs = reg.Counter("grist_checkpoint_epochs_total").Value()
	res.SentinelTrips = mon.TotalTrips()
	return res, mon.Trips()
}

// Rows renders the result as aligned report lines.
func (r ChaosResult) Rows() []string {
	row := func(name string, l ChaosLeg) string {
		status := "bitwise recovery"
		if !l.Bitwise {
			status = "DIVERGED"
		}
		if l.Err != "" {
			status = "FAILED: " + l.Err
		}
		return name + ": " + status +
			" (attempts=" + itoa(l.Attempts) + " recoveries=" + itoa(l.Recoveries) +
			" faults=" + itoa(len(l.Faults)+l.FaultsExtra) + ")"
	}
	ml := "ml nan: scalar fallback x" + itoa(int(r.MLFallbacks))
	if !r.MLOutputsFinite {
		ml = "ml nan: NON-FINITE OUTPUT ESCAPED"
	}
	return []string{
		row("rank death", r.RankDeath),
		row("bit flip", r.BitFlip),
		ml,
		"counters: recoveries=" + itoa(int(r.RecoveryTotal)) +
			" rank failures=" + itoa(int(r.RankFailures)) +
			" ckpt epochs=" + itoa(int(r.CkptEpochs)) +
			" sentinel trips=" + itoa(int(r.SentinelTrips)),
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

// SentinelTrip is the JSON rendering of a health-monitor trip. The
// measured value is formatted as a string: a NaN observation (a mass
// integral poisoned by the injected corruption) is legitimate trip
// evidence but not a legal JSON number.
type SentinelTrip struct {
	Sentinel  string  `json:"sentinel"`
	Step      int64   `json:"step"`
	Value     string  `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail"`
}

// WriteChaos runs the default chaos experiment under dir and writes
// CHAOS_recovery.json and CHAOS_sentinels.json there.
func WriteChaos(dir string) (ChaosResult, error) {
	cfg := DefaultChaosConfig()
	cfg.Dir = dir
	return WriteChaosConfig(cfg)
}

// WriteChaosConfig is WriteChaos with an explicit configuration; the
// artifacts land in cfg.Dir.
func WriteChaosConfig(cfg ChaosConfig) (ChaosResult, error) {
	res, trips := RunChaos(cfg)
	hist := make([]SentinelTrip, 0, len(trips))
	for _, ev := range trips {
		hist = append(hist, SentinelTrip{
			Sentinel: ev.Sentinel, Step: ev.Step,
			Value:     strconv.FormatFloat(ev.Value, 'g', -1, 64),
			Threshold: ev.Threshold, Detail: ev.Detail,
		})
	}
	for name, v := range map[string]any{
		"CHAOS_recovery.json":  res,
		"CHAOS_sentinels.json": hist,
	} {
		buf, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return res, err
		}
		if err := os.WriteFile(filepath.Join(cfg.Dir, name), append(buf, '\n'), 0o644); err != nil {
			return res, err
		}
	}
	return res, nil
}
