package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/serve"
	"gristgo/internal/telemetry"
)

// ServeBenchConfig drives the query-plane benchmark: a multi-epoch
// snapshot set served through the full HTTP admission pipeline
// (quota -> queue -> engine -> tile cache) under a synthetic replay of
// millions of point queries with a hotspot structure.
type ServeBenchConfig struct {
	GridLevel int
	NLev      int
	Epochs    int
	Queries   int
	Workers   int
	Tiles     int
	CacheFrac float64 // cache capacity as a fraction of the total key space
	QuotaRate float64 // per-tenant queries/second (the greedy tenant must trip this)
}

// DefaultServeBenchConfig returns the reproduction-scale setup: a G4
// mesh, three epochs, and a 1.2M-query replay with the tile cache
// sized below the key space so eviction and coalescing both happen.
func DefaultServeBenchConfig() ServeBenchConfig {
	return ServeBenchConfig{
		GridLevel: 4,
		NLev:      8,
		Epochs:    3,
		Queries:   1_200_000,
		Workers:   8,
		Tiles:     48,
		CacheFrac: 0.4,
		QuotaRate: 30_000,
	}
}

// ServeBenchResult is the JSON payload of BENCH_serve.json.
type ServeBenchResult struct {
	Cells  int `json:"cells"`
	Epochs int `json:"epochs"`
	Tiles  int `json:"tiles"`
	Cache  int `json:"cache_tiles"`

	serve.LoadReport
}

// RunServeBench builds the snapshots, stands up a serving plane, and
// replays the workload in process.
func RunServeBench(cfg ServeBenchConfig) ServeBenchResult {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	keySpace := cfg.Epochs * cfg.Tiles * serve.NumFields
	cacheTiles := int(float64(keySpace) * cfg.CacheFrac)
	if cacheTiles < 1 {
		cacheTiles = 1
	}
	srv := serve.NewServer(m, serve.Config{
		Tiles:      cfg.Tiles,
		CacheTiles: cacheTiles,
		Retain:     cfg.Epochs,
		QuotaRate:  cfg.QuotaRate,
		QuotaBurst: 256,
	}, telemetry.NewRegistry())
	for e := 0; e < cfg.Epochs; e++ {
		s := benchState(m, cfg.NLev, e)
		srv.Publish(serve.SnapshotFromState(e, e*10, s))
	}
	// Half the traffic comes from one greedy tenant, the rest is spread
	// over 8 polite ones — only the greedy tenant should trip the quota.
	rep := serve.RunLoadInProcess(srv.Mux(), srv.Engine, serve.LoadConfig{
		Queries: cfg.Queries,
		Workers: cfg.Workers,
		Tenants: 8,
		Greedy:  0.5,
	})
	return ServeBenchResult{
		Cells:      m.NCells,
		Epochs:     cfg.Epochs,
		Tiles:      cfg.Tiles,
		Cache:      cacheTiles,
		LoadReport: rep,
	}
}

// Rows renders the result for the console.
func (r ServeBenchResult) Rows() []string {
	rows := []string{fmt.Sprintf("cells=%d epochs=%d tiles=%d cache=%d tiles",
		r.Cells, r.Epochs, r.Tiles, r.Cache)}
	return append(rows, r.LoadReport.Rows()...)
}

// benchState builds one epoch's full-mesh state: a resting isothermal
// atmosphere with a traveling warm anomaly and a solid-body wind, so
// the served fields vary by epoch without running the dycore.
func benchState(m *mesh.Mesh, nlev, epoch int) *dycore.State {
	s := dycore.NewState(m, nlev)
	s.IsothermalRest(290 + float64(epoch))
	s.AddThermalBubble(0.3+0.2*float64(epoch), 1.0, 0.25, 5)
	s.AddSolidBodyWind(15)
	return s
}

// WriteServeBench runs the default benchmark and writes
// BENCH_serve.json into dir.
func WriteServeBench(dir string) (ServeBenchResult, error) {
	res := RunServeBench(DefaultServeBenchConfig())
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return res, err
	}
	return res, os.WriteFile(filepath.Join(dir, "BENCH_serve.json"), append(buf, '\n'), 0o644)
}
