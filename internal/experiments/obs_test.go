package experiments

import (
	"testing"
)

// TestObsBenchSmallScale exercises the full obs pipeline at a scale
// cheap enough for the tier-1 suite. The attributed-improves verdict is
// only asserted at the default (level 5) scale by the CI bench gate —
// below that the wall−wait signal drowns in scheduling noise — so here
// the assertions cover structure and the replay-identity invariant.
func TestObsBenchSmallScale(t *testing.T) {
	cfg := ObsBenchConfig{GridLevel: 3, NLev: 4, Parts: 3, Steps: 4,
		RebalanceAt: []int{2}, Seed: 7}
	res, tl, pm := RunObsBench(cfg)
	if !res.PostmortemDeterministic {
		t.Fatal("postmortem replay was not byte-identical")
	}
	if res.StepsMerged != cfg.Steps {
		t.Fatalf("steps merged = %d, want %d", res.StepsMerged, cfg.Steps)
	}
	if res.RepartitionsApplied != 1 {
		t.Fatalf("repartitions applied = %d, want 1", res.RepartitionsApplied)
	}
	if res.SpansMerged == 0 || res.CriticalPathNS <= 0 {
		t.Fatalf("empty postmortem: %+v", res)
	}
	if len(tl.Ranks) != cfg.Parts {
		t.Fatalf("timeline ranks = %v, want %d", tl.Ranks, cfg.Parts)
	}
	for _, st := range pm.Steps {
		if len(st.CriticalPath) == 0 {
			t.Fatalf("step %d has no critical path", st.Step)
		}
		if st.Imbalance < 1 {
			t.Fatalf("step %d imbalance %.3f < 1", st.Step, st.Imbalance)
		}
	}
}
