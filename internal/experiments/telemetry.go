package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/telemetry"
)

// TelemetryBenchConfig drives the observability benchmark: a short fully
// instrumented coupled run (spans, metrics, sentinels all on) to measure
// step latency under telemetry, plus a distributed dynamics leg for the
// measured communication share and load-imbalance gauges.
type TelemetryBenchConfig struct {
	GridLevel int
	NLev      int
	Steps     int // physics steps of the instrumented coupled run
	DistParts int // ranks of the distributed dynamics leg
	DistSteps int // dynamics steps of the distributed leg
}

// DefaultTelemetryBenchConfig returns the reproduction-scale setup.
func DefaultTelemetryBenchConfig() TelemetryBenchConfig {
	return TelemetryBenchConfig{GridLevel: 3, NLev: 8, Steps: 8, DistParts: 4, DistSteps: 4}
}

// TelemetryBenchResult is the JSON payload of BENCH_telemetry.json.
type TelemetryBenchResult struct {
	Steps            int     `json:"steps"`
	StepLatencyP50   float64 `json:"step_latency_p50_s"`
	StepLatencyP90   float64 `json:"step_latency_p90_s"`
	StepLatencyP99   float64 `json:"step_latency_p99_s"`
	StepLatencyMean  float64 `json:"step_latency_mean_s"`
	SYPD             float64 `json:"sypd"`
	CommShare        float64 `json:"comm_share"`
	LoadImbalance    float64 `json:"load_imbalance"`
	HaloBytesPerStep float64 `json:"halo_bytes_per_step"`
	Spans            int     `json:"spans_recorded"`
	SpansDropped     uint64  `json:"spans_dropped"`
	SentinelTrips    int     `json:"sentinel_trips"`
}

// RunTelemetryBench runs the two instrumented legs and returns the
// distilled result plus the recorder (so callers can export the trace).
func RunTelemetryBench(cfg TelemetryBenchConfig) (TelemetryBenchResult, *telemetry.Recorder) {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	reg := telemetry.NewRegistry()
	rec := telemetry.NewRecorder(1 << 16)
	tm := core.NewTimingsOn(reg)

	// Leg 1: coupled model with the full observability plane attached.
	mod := core.NewModelOnMesh(core.Config{GridLevel: cfg.GridLevel, NLev: cfg.NLev, Mode: precision.Mixed},
		physics.NewConventional(cfg.NLev), m)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	tel := mod.EnableTelemetry(reg, rec, nil)
	for i := 0; i < cfg.Steps; i++ {
		mod.StepPhysicsTimed(cl.Season, tm)
	}

	// Leg 2: distributed dynamics for the comm-share and imbalance gauges.
	init := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(15)
	}
	core.RunDistributedDynamicsObserved(m, cfg.NLev, cfg.DistParts, precision.Mixed,
		init, cfg.DistSteps, 60, tm, reg, rec)

	h := reg.Histogram("grist_step_latency_seconds")
	return TelemetryBenchResult{
		Steps:            cfg.Steps,
		StepLatencyP50:   h.Quantile(0.5),
		StepLatencyP90:   h.Quantile(0.9),
		StepLatencyP99:   h.Quantile(0.99),
		StepLatencyMean:  h.Mean(),
		SYPD:             reg.Gauge("grist_sypd").Value(),
		CommShare:        reg.Gauge("grist_comm_share").Value(),
		LoadImbalance:    reg.Gauge("grist_load_imbalance").Value(),
		HaloBytesPerStep: reg.Gauge("grist_halo_bytes_per_step").Value(),
		Spans:            rec.Len(),
		SpansDropped:     rec.Dropped(),
		SentinelTrips:    len(tel.Health.Trips()),
	}, rec
}

// Rows renders the result as aligned report lines.
func (r TelemetryBenchResult) Rows() []string {
	return []string{
		fmt.Sprintf("steps=%d  latency p50=%.3fs p90=%.3fs p99=%.3fs mean=%.3fs",
			r.Steps, r.StepLatencyP50, r.StepLatencyP90, r.StepLatencyP99, r.StepLatencyMean),
		fmt.Sprintf("sypd=%.4f  comm share=%.1f%%  load imbalance=%.2f  halo bytes/step=%.0f",
			r.SYPD, r.CommShare*100, r.LoadImbalance, r.HaloBytesPerStep),
		fmt.Sprintf("spans=%d (dropped %d)  sentinel trips=%d", r.Spans, r.SpansDropped, r.SentinelTrips),
	}
}

// WriteTelemetryBench runs the default benchmark and writes
// BENCH_telemetry.json plus the Chrome trace BENCH_trace.json into dir,
// returning the result for display.
func WriteTelemetryBench(dir string) (TelemetryBenchResult, error) {
	res, rec := RunTelemetryBench(DefaultTelemetryBenchConfig())
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return res, err
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_telemetry.json"), append(buf, '\n'), 0o644); err != nil {
		return res, err
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_trace.json"))
	if err != nil {
		return res, err
	}
	defer f.Close()
	return res, rec.WriteChromeTrace(f)
}
