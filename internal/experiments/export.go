package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"

	"gristgo/internal/mesh"
	"gristgo/internal/perfmodel"
	"gristgo/internal/precision"
)

// WriteScalingCSV writes plot-ready CSV files for the machine-scale
// figures (fig2.csv, fig9.csv, fig10.csv, fig11.csv) into dir, creating
// it if needed. These are the series a plotting script needs to redraw
// the paper's figures.
func WriteScalingCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	m := perfmodel.NewMachine()

	// --- Fig. 2 ---
	if err := writeCSV(filepath.Join(dir, "fig2.csv"),
		[]string{"model", "machine", "year", "resolution_km", "sypd", "note"},
		func(emit func(...string)) {
			for _, e := range append(perfmodel.Fig2Literature(), perfmodel.Fig2Ours(m)...) {
				emit(e.Model, e.Machine, fmt.Sprint(e.Year),
					fmt.Sprintf("%g", e.ResolutionKm), fmt.Sprintf("%g", e.SYPD), e.Note)
			}
		}); err != nil {
		return err
	}

	// --- Fig. 9 ---
	r9 := RunFig9(4, 16)
	if err := writeCSV(filepath.Join(dir, "fig9.csv"),
		append([]string{"kernel"}, r9.Variants...),
		func(emit func(...string)) {
			for i, k := range r9.Kernels {
				row := []string{k}
				for _, s := range r9.Speedup[i] {
					row = append(row, fmt.Sprintf("%.2f", s))
				}
				emit(row...)
			}
		}); err != nil {
		return err
	}

	// --- Fig. 10 ---
	if err := writeCSV(filepath.Join(dir, "fig10.csv"),
		[]string{"scheme", "ncg", "grid", "sdpd", "eff_pct", "comm_pct"},
		func(emit func(...string)) {
			for _, s := range []perfmodel.Scheme{
				{Mode: precision.Mixed, ML: false},
				{Mode: precision.Mixed, ML: true},
			} {
				for _, p := range m.WeakScaling(s) {
					emit(s.Label(), fmt.Sprint(p.NCG), fmt.Sprintf("G%d", p.Level),
						fmt.Sprintf("%.2f", p.R.SDPD), fmt.Sprintf("%.2f", p.EffPct),
						fmt.Sprintf("%.2f", 100*p.R.CommShare))
				}
			}
		}); err != nil {
		return err
	}

	// --- Fig. 11 ---
	return writeCSV(filepath.Join(dir, "fig11.csv"),
		[]string{"grid", "scheme", "ncg", "sdpd", "eff_pct", "cache_hit"},
		func(emit func(...string)) {
			for _, s := range perfmodel.AllSchemes() {
				for _, p := range m.StrongScaling(12, 30, perfmodel.G12Steps(), s) {
					emit("G12", s.Label(), fmt.Sprint(p.NCG),
						fmt.Sprintf("%.2f", p.R.SDPD), fmt.Sprintf("%.2f", p.EffPct),
						fmt.Sprintf("%.4f", p.R.CacheHit))
				}
			}
			s := perfmodel.Scheme{Mode: precision.Mixed, ML: true}
			for _, p := range m.StrongScaling(11, 30, perfmodel.G11SSteps(), s) {
				emit("G11S", s.Label(), fmt.Sprint(p.NCG),
					fmt.Sprintf("%.2f", p.R.SDPD), fmt.Sprintf("%.2f", p.EffPct),
					fmt.Sprintf("%.4f", p.R.CacheHit))
			}
		})
}

// WriteRainfallCSV writes a (lat, lon, value) table of a cell field —
// the plot-ready form of the Fig. 7/8 rainfall maps.
func WriteRainfallCSV(path string, m *mesh.Mesh, field []float64) error {
	return writeCSV(path, []string{"lat_deg", "lon_deg", "value"},
		func(emit func(...string)) {
			for c := 0; c < m.NCells; c++ {
				emit(fmt.Sprintf("%.4f", m.CellLat[c]*180/3.141592653589793),
					fmt.Sprintf("%.4f", m.CellLon[c]*180/3.141592653589793),
					fmt.Sprintf("%.6g", field[c]))
			}
		})
}

func writeCSV(path string, header []string, body func(emit func(...string))) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	var writeErr error
	body(func(fields ...string) {
		if writeErr == nil {
			writeErr = w.Write(fields)
		}
	})
	w.Flush()
	if writeErr != nil {
		return writeErr
	}
	return w.Error()
}
