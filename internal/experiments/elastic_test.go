package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteElastic runs the shrinkgrow experiment at CI scale and
// checks the artifact carries the acceptance evidence: the DP legs
// finish bitwise identical to the uninjected run across a shrink and a
// grow, the mixed legs stay within the 5% ps/vor gate, overlap and
// blocking halo rounds agree bitwise within each mode, and the grow
// measurably reduces the load imbalance.
func TestWriteElastic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-leg elastic-membership run")
	}
	dir := t.TempDir()
	res, err := WriteElastic(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []ElasticLeg{res.DP, res.DPBlocking} {
		if leg.Err != "" {
			t.Errorf("dp leg (overlap=%v) failed: %s", leg.Overlap, leg.Err)
		}
		if !leg.Bitwise {
			t.Errorf("dp leg (overlap=%v) is not bitwise vs the clean run", leg.Overlap)
		}
	}
	for _, leg := range []ElasticLeg{res.Mixed, res.MixedBlock} {
		if leg.Err != "" {
			t.Errorf("mixed leg (overlap=%v) failed: %s", leg.Overlap, leg.Err)
		}
		if !leg.WithinGate {
			t.Errorf("mixed leg (overlap=%v) exceeds the 5%% gate: ps %.3g vor %.3g",
				leg.Overlap, leg.PsRelErr, leg.VorRelErr)
		}
	}
	for _, leg := range []ElasticLeg{res.DP, res.DPBlocking, res.Mixed, res.MixedBlock} {
		if len(leg.WorldSizes) != 3 || leg.WorldSizes[0] != 4 || leg.WorldSizes[1] != 3 || leg.WorldSizes[2] != 4 {
			t.Errorf("leg %s/overlap=%v world sizes %v, want [4 3 4]", leg.Mode, leg.Overlap, leg.WorldSizes)
		}
		if len(leg.Reshapes) != 2 || leg.Reshapes[0].Kind != "shrink" || leg.Reshapes[1].Kind != "grow" {
			t.Errorf("leg %s/overlap=%v reshapes %+v, want shrink then grow", leg.Mode, leg.Overlap, leg.Reshapes)
		}
	}
	if !res.ParityDP || !res.ParityMixed {
		t.Errorf("overlap/blocking parity broken: dp=%v mixed=%v", res.ParityDP, res.ParityMixed)
	}
	if !res.ImbalanceReduced {
		t.Errorf("the grow did not reduce the load imbalance: dp %.2f->%.2f",
			res.DP.ImbalanceShrunk, res.DP.ImbalanceGrown)
	}
	if res.RepartitionTotal != 8 {
		t.Errorf("grist_repartition_total = %d, want 8 (2 per leg)", res.RepartitionTotal)
	}

	raw, err := os.ReadFile(filepath.Join(dir, "CHAOS_elastic.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back ElasticResult
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("CHAOS_elastic.json does not round-trip: %v", err)
	}
	if back.Seed != res.Seed || back.ParityDP != res.ParityDP {
		t.Fatal("CHAOS_elastic.json does not match the in-memory result")
	}
	if rows := res.Rows(); len(rows) != 7 {
		t.Fatalf("Rows() returned %d lines, want 7", len(rows))
	}
}
