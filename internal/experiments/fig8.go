package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"gristgo/internal/coarse"
	"gristgo/internal/core"
	"gristgo/internal/mesh"
	"gristgo/internal/mlphysics"
	"gristgo/internal/physics"
	"gristgo/internal/synthclim"
)

// Fig8Config drives the ML-physics evaluation: the full §3.2 pipeline at
// reproduction scale — run a finer-grid "GSRM" with conventional physics,
// coarse-grain its output, derive Q1/Q2 by the residual method, train the
// ML suite, then couple it online and compare rainfall against the
// conventional suite.
type Fig8Config struct {
	FineLevel   int // the "5 km GSRM" substitute
	CoarseLevel int // the "30 km" training grid
	ApplyLevel  int // an additional resolution to test adaptivity (G6 vs G8 in the paper)
	NLev        int
	TrainDays   int
	StepsPerDay int
	RunHours    float64
	Train       mlphysics.TrainConfig
}

// DefaultFig8Config returns the reproduction-scale configuration.
func DefaultFig8Config() Fig8Config {
	tc := mlphysics.DefaultTrainConfig()
	tc.Epochs = 25
	return Fig8Config{
		FineLevel: 3, CoarseLevel: 2, ApplyLevel: 3,
		NLev: 8, TrainDays: 2, StepsPerDay: 4, RunHours: 6,
		Train: tc,
	}
}

// Fig8Result compares conventional and ML-physics simulations.
type Fig8Result struct {
	TendTestLoss float64 // normalized MSE of the tendency CNN on held-out steps
	RadTestLoss  float64 // same for the radiation MLP

	// Pattern correlation of the two suites' rainfall at the training
	// resolution and at the adaptivity-test resolution.
	CorrTrainRes float64
	CorrApplyRes float64

	// Tropical rain-band check: area-mean rainfall inside the ITCZ band
	// vs outside, per suite, at the training resolution.
	BandContrastConv float64
	BandContrastML   float64

	Stable bool // ML run finished without NaN/blowup
}

// smoothLog prepares a rainfall field for pattern correlation the way
// precipitation verification usually does: one smoothing pass to the
// mesh scale and a log(1+R) transform so the heavy tail does not
// dominate the statistic.
func smoothLog(m *mesh.Mesh, rain []float64) []float64 {
	out := make([]float64, m.NCells)
	for c := int32(0); c < int32(m.NCells); c++ {
		sum := rain[c] * m.CellArea[c]
		w := m.CellArea[c]
		for _, nb := range m.CellCells(c) {
			sum += rain[nb] * m.CellArea[nb]
			w += m.CellArea[nb]
		}
		out[c] = math.Log1p(sum / w)
	}
	return out
}

// rainBandContrast returns mean rainfall within 15 degrees of the ITCZ
// latitude divided by the mean elsewhere.
func rainBandContrast(m *mesh.Mesh, rain []float64, itczLat float64) float64 {
	var in, out, inW, outW float64
	for c := 0; c < m.NCells; c++ {
		w := m.CellArea[c]
		if math.Abs(m.CellLat[c]-itczLat) < 15*math.Pi/180 {
			in += rain[c] * w
			inW += w
		} else {
			out += rain[c] * w
			outW += w
		}
	}
	if outW == 0 {
		return math.Inf(1)
	}
	outMean := out / outW
	if outMean <= 0 {
		outMean = 1e-6 // all rain inside the band: report a large finite contrast
	}
	return (in / inW) / outMean
}

// runSuite integrates a model with the given physics suite and returns
// its mean rainfall field.
func runSuite(level, nlev int, scheme physics.Scheme, m *mesh.Mesh, hours float64) ([]float64, bool) {
	mod := core.NewModelOnMesh(core.Config{GridLevel: level, NLev: nlev}, scheme, m)
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	mod.ResetDiagnostics()
	mod.RunHours(hours, cl.Season)
	rain := mod.PrecipRate()
	for _, v := range rain {
		if math.IsNaN(v) || v < 0 || v > 1e5 {
			return rain, false
		}
	}
	for _, v := range mod.Engine.State().U {
		if math.IsNaN(v) || math.Abs(v) > 500 {
			return rain, false
		}
	}
	return rain, true
}

// RunFig8 executes the full pipeline.
func RunFig8(cfg Fig8Config) Fig8Result {
	// --- 1. Training data from the GSRM substitute (§3.2.1). ---
	gen := coarse.NewGenerator(coarse.GeneratorConfig{
		FineLevel: cfg.FineLevel, CoarseLevel: cfg.CoarseLevel, NLev: cfg.NLev,
		StepsPerDay: cfg.StepsPerDay, Days: cfg.TrainDays,
		Period: synthclim.Table1()[2],
	}, nil, nil)
	samples := gen.Run()
	train, test := coarse.Split(samples, cfg.StepsPerDay, rand.New(rand.NewSource(42)))

	// --- 2. Train the ML suite (§3.2.3). ---
	suite, lossT, lossR := mlphysics.Train(train, test, cfg.NLev, cfg.Train)

	res := Fig8Result{TendTestLoss: lossT, RadTestLoss: lossR}

	// --- 3. Online coupling at the training resolution (§3.2.4). ---
	mTrain := mesh.New(cfg.CoarseLevel).ReorderBFS()
	rainConv, okC := runSuite(cfg.CoarseLevel, cfg.NLev, physics.NewConventional(cfg.NLev), mTrain, cfg.RunHours)
	rainML, okM := runSuite(cfg.CoarseLevel, cfg.NLev, suite, mTrain, cfg.RunHours)
	res.Stable = okC && okM
	res.CorrTrainRes = synthclim.SpatialCorrelation(mTrain, smoothLog(mTrain, rainML), smoothLog(mTrain, rainConv), nil)

	itcz := 8 * math.Pi / 180
	res.BandContrastConv = rainBandContrast(mTrain, rainConv, itcz)
	res.BandContrastML = rainBandContrast(mTrain, rainML, itcz)

	// --- 4. Resolution adaptivity: apply the same trained suite at a
	// different resolution (§3.2.2's G6-vs-G8 claim). ---
	if cfg.ApplyLevel != cfg.CoarseLevel {
		mApply := mesh.New(cfg.ApplyLevel).ReorderBFS()
		rainConvA, _ := runSuite(cfg.ApplyLevel, cfg.NLev, physics.NewConventional(cfg.NLev), mApply, cfg.RunHours)
		rainMLA, okA := runSuite(cfg.ApplyLevel, cfg.NLev, suite, mApply, cfg.RunHours)
		res.Stable = res.Stable && okA
		res.CorrApplyRes = synthclim.SpatialCorrelation(mApply, smoothLog(mApply, rainMLA), smoothLog(mApply, rainConvA), nil)
	}
	return res
}

// Rows renders the Fig. 8 result.
func (r Fig8Result) Rows() []string {
	return []string{
		fmt.Sprintf("tendency CNN held-out loss (normalized MSE): %.4f", r.TendTestLoss),
		fmt.Sprintf("radiation MLP held-out loss (normalized MSE): %.4f", r.RadTestLoss),
		fmt.Sprintf("rainfall pattern corr, ML vs conventional (training res): %.3f", r.CorrTrainRes),
		fmt.Sprintf("rainfall pattern corr, ML vs conventional (transfer res): %.3f", r.CorrApplyRes),
		fmt.Sprintf("ITCZ rain-band contrast: conventional %.2f, ML %.2f", r.BandContrastConv, r.BandContrastML),
		fmt.Sprintf("ML-coupled run stable: %v", r.Stable),
	}
}
