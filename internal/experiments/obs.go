package experiments

// Observability experiment: the cross-rank trace pipeline exercised end
// to end, distilled into BENCH_obs.json for the CI regression gate.
//
// Two claims are measured:
//
//   - postmortem_deterministic: over one fixed set of per-rank flight
//     rings, obs.Merge + obs.Build + JSON encode run twice must be
//     byte-identical — the critical path, straggler ranking and phase
//     attribution depend only on ring contents, never on map order or
//     the wall clock at analysis time.
//
//   - attributed_improves: two rebalanced runs start from the same
//     deliberately skewed decomposition (half the mesh carries 8x cell
//     weight, so one rank owns roughly half the cells). The gauge leg
//     feeds raw per-rank leg walls back into the partitioner; under
//     lockstep synchronization walls equalize — peers absorb the
//     straggler's excess as halo wait — so equal walls over unequal
//     cell counts reproduce the skew. The span leg feeds attributed
//     compute (wall minus measured halo wait), which localizes the
//     real load, so its final measured compute imbalance must come out
//     lower than the gauge leg's.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/obs"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// ObsBenchConfig drives the observability benchmark.
type ObsBenchConfig struct {
	GridLevel int
	NLev      int
	Parts     int
	Steps     int
	// RebalanceAt lists the repartition boundaries of both legs.
	RebalanceAt []int
	Seed        int64
}

// DefaultObsBenchConfig returns the CI-scale setup: level-5 mesh, four
// ranks, two repartitions over eight steps. Level 5 is the floor at
// which per-step compute dominates channel synchronization overhead;
// below it the wall−wait signal drowns in scheduling noise and neither
// weighting can demonstrate anything.
func DefaultObsBenchConfig() ObsBenchConfig {
	return ObsBenchConfig{GridLevel: 5, NLev: 8, Parts: 4, Steps: 8,
		RebalanceAt: []int{3, 6}, Seed: 12345}
}

// ObsBenchResult is the JSON payload of BENCH_obs.json.
type ObsBenchResult struct {
	Steps int `json:"steps"`
	Parts int `json:"parts"`

	// Final measured compute imbalance (max/mean of per-rank wall−wait
	// over the last leg) of the wall-weighted and span-weighted runs.
	GaugeImbalance      float64 `json:"gauge_final_imbalance"`
	AttributedImbalance float64 `json:"attributed_final_imbalance"`
	AttributedImproves  bool    `json:"attributed_improves"`

	RepartitionsApplied int `json:"repartitions_applied"`

	// Postmortem replay identity and headline numbers from the span run.
	PostmortemDeterministic bool   `json:"postmortem_deterministic"`
	StepsMerged             int    `json:"steps_merged"`
	SpansMerged             int    `json:"spans_merged"`
	SpansDropped            uint64 `json:"spans_dropped"`
	CriticalPathNS          int64  `json:"critical_path_ns"`
	CritWaitShare           float64 `json:"crit_wait_share"`
}

// skewWeights returns per-cell weights that deliberately unbalance the
// seed decomposition: the first half of the BFS-ordered mesh carries 8x
// weight, so the partitioner hands roughly half the cells to one rank.
func skewWeights(ncells int) []int32 {
	w := make([]int32, ncells)
	for c := range w {
		if c < ncells/2 {
			w[c] = 8
		} else {
			w[c] = 1
		}
	}
	return w
}

// RunObsBench runs both legs and the replay check, returning the result
// plus the merged timeline and postmortem of the span-weighted run for
// artifact export.
func RunObsBench(cfg ObsBenchConfig) (ObsBenchResult, *obs.Timeline, *obs.Postmortem) {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	initFn := func(s *dycore.State) {
		s.IsothermalRest(290)
		s.AddSolidBodyWind(15)
	}
	skew := skewWeights(m.NCells)

	// Leg 1: wall-weighted (the raw imbalance-gauge signal).
	_, gaugeRep := core.RunDistributedDynamicsRebalancedOpts(m, cfg.NLev, cfg.Parts,
		precision.Mixed, initFn, cfg.Steps, 60, core.RebalanceOpts{
			RebalanceAt: cfg.RebalanceAt, Seed: cfg.Seed,
			Attributed: false, InitialWeights: skew,
		})

	// Leg 2: span-weighted, with per-rank flight recorders attached so
	// the same run feeds the postmortem pipeline.
	reg := telemetry.NewRegistry()
	recs := make([]*telemetry.Recorder, cfg.Parts)
	for p := range recs {
		recs[p] = telemetry.NewRecorder(1 << 14)
	}
	_, attrRep := core.RunDistributedDynamicsRebalancedOpts(m, cfg.NLev, cfg.Parts,
		precision.Mixed, initFn, cfg.Steps, 60, core.RebalanceOpts{
			RebalanceAt: cfg.RebalanceAt, Seed: cfg.Seed,
			Attributed: true, InitialWeights: skew,
			Reg: reg, Recs: recs,
		})

	// Replay identity: merge the rings once, build + encode twice.
	rings, dropped := obs.Rings(recs...)
	t := obs.Merge(rings, dropped)
	var a, b bytes.Buffer
	obs.Build(t, 3).EncodeJSON(&a)
	pm := obs.Build(t, 3)
	pm.EncodeJSON(&b)

	var critNS, critWaitNS int64
	spans := 0
	for _, st := range pm.Steps {
		critNS += st.CriticalNS
		critWaitNS += st.CritWaitNS
		for _, ra := range st.Ranks {
			spans += ra.Spans
		}
	}
	waitShare := 0.0
	if critNS > 0 {
		waitShare = float64(critWaitNS) / float64(critNS)
	}
	return ObsBenchResult{
		Steps:                   cfg.Steps,
		Parts:                   cfg.Parts,
		GaugeImbalance:          gaugeRep.FinalImbalance,
		AttributedImbalance:     attrRep.FinalImbalance,
		AttributedImproves:      attrRep.FinalImbalance < gaugeRep.FinalImbalance,
		RepartitionsApplied:     attrRep.Applied,
		PostmortemDeterministic: bytes.Equal(a.Bytes(), b.Bytes()),
		StepsMerged:             len(pm.Steps),
		SpansMerged:             spans,
		SpansDropped:            pm.Dropped,
		CriticalPathNS:          critNS,
		CritWaitShare:           waitShare,
	}, t, pm
}

// Rows renders the result as aligned report lines.
func (r ObsBenchResult) Rows() []string {
	return []string{
		fmt.Sprintf("ranks=%d steps=%d  repartitions applied=%d", r.Parts, r.Steps, r.RepartitionsApplied),
		fmt.Sprintf("final compute imbalance: wall-weighted=%.3f span-weighted=%.3f improves=%v",
			r.GaugeImbalance, r.AttributedImbalance, r.AttributedImproves),
		fmt.Sprintf("postmortem: deterministic=%v steps=%d spans=%d dropped=%d crit=%.3fms wait-share=%.1f%%",
			r.PostmortemDeterministic, r.StepsMerged, r.SpansMerged, r.SpansDropped,
			float64(r.CriticalPathNS)/1e6, 100*r.CritWaitShare),
	}
}

// WriteObsBench runs the default benchmark and writes BENCH_obs.json,
// the step postmortem BENCH_obs_postmortem.json and the merged
// multi-rank Chrome trace BENCH_obs_trace.json into dir.
func WriteObsBench(dir string) (ObsBenchResult, error) {
	res, t, pm := RunObsBench(DefaultObsBenchConfig())
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return res, err
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_obs.json"), append(buf, '\n'), 0o644); err != nil {
		return res, err
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_obs_postmortem.json"))
	if err != nil {
		return res, err
	}
	if err := pm.EncodeJSON(f); err != nil {
		f.Close()
		return res, err
	}
	f.Close()
	g, err := os.Create(filepath.Join(dir, "BENCH_obs_trace.json"))
	if err != nil {
		return res, err
	}
	defer g.Close()
	return res, t.WriteChromeTrace(g, pm)
}
