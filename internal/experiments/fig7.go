package experiments

import (
	"fmt"

	"gristgo/internal/coarse"
	"gristgo/internal/core"
	"gristgo/internal/mesh"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
	"gristgo/internal/tracer"
)

// Fig7Config sets up the Typhoon Doksuri "23.7" extreme-rainfall case.
// The paper compares G11L60 (coarser horizontal, more layers) against
// G12L30 (finer horizontal, fewer layers); at reproduction scale the
// same contrast runs at reduced levels, e.g. coarse (G4, 12 layers) vs
// fine (G5, 6 layers).
type Fig7Config struct {
	CoarseLevel, CoarseLayers int
	FineLevel, FineLayers     int
	Hours                     float64
}

// DefaultFig7Config returns the reproduction-scale case.
func DefaultFig7Config() Fig7Config {
	return Fig7Config{
		CoarseLevel: 4, CoarseLayers: 12,
		FineLevel: 5, FineLayers: 6,
		Hours: 12,
	}
}

// Fig7Result carries both simulations' scores against the CMPA-like
// observations over the North China verification region.
type Fig7Result struct {
	CorrCoarse, CorrFine float64 // spatial correlation with observations
	PeakObsFine          float64 // observed peak rain (fine mesh sampling)
	PeakCoarse, PeakFine float64 // simulated peak rain in the region
	CoarseLabel          string
	FineLabel            string
}

// runDoksuriMember runs one resolution member and returns its rainfall
// field (mm/day).
func runDoksuriMember(level, layers int, hours float64, cs synthclim.DoksuriCase) (*mesh.Mesh, []float64) {
	m := mesh.New(level).ReorderBFS()
	mod := core.NewModelOnMesh(core.Config{
		GridLevel: level, NLev: layers, Mode: precision.Mixed,
	}, physics.NewConventional(layers), m)

	// Late-July climate (the third Table 1 period is July).
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 15)
	mod.InitializeClimate(cl)
	mod.SetTerrain(synthclim.Terrain)

	// Super Typhoon Doksuri: a warm-core vortex south of the rainfall
	// region, feeding moisture northward.
	s := mod.Engine.State()
	s.AddVortex(cs.StormLat, cs.StormLon, cs.Vmax, cs.Rmax)

	// Moisten the storm's feed: raise qv around and north of the vortex
	// toward saturation (the low-level jet of the "23.7" event).
	for c := 0; c < m.NCells; c++ {
		d := mesh.ArcLength(m.CellPos[c], mesh.FromLatLon(cs.StormLat+0.06, cs.StormLon))
		if d > 0.25 {
			continue
		}
		w := 1.0 - d/0.25
		for k := layers / 2; k < layers; k++ {
			i := c*layers + k
			qs := physics.SatMixingRatio(mod.In.T[i], mod.In.P[i])
			if mod.In.T[i] == 0 { // before first physics step In.T is empty
				qs = 0.02
			}
			q := mod.Tracers.MixingRatio(tracer.QV, c, k)
			target := 0.95 * qs
			if target > q {
				mod.Tracers.SetMixingRatio(tracer.QV, c, k, q+w*(target-q))
			}
		}
	}

	mod.ResetDiagnostics()
	mod.RunHours(hours, cl.Season)

	rain := mod.PrecipRate()
	oro := mod.OrographicPrecip()
	for c := range rain {
		rain[c] += oro[c]
	}
	return m, rain
}

// RunFig7 executes the resolution-sensitivity comparison and scores both
// members against the synthetic CMPA analysis.
func RunFig7(cfg Fig7Config) Fig7Result {
	cs := synthclim.NewDoksuriCase()

	mc, rainC := runDoksuriMember(cfg.CoarseLevel, cfg.CoarseLayers, cfg.Hours, cs)
	mf, rainF := runDoksuriMember(cfg.FineLevel, cfg.FineLayers, cfg.Hours, cs)

	// Verification follows the paper: both members are scored against
	// the same CMPA analysis on a common grid — the fine mesh. The
	// coarse member is upsampled piecewise-constant (each fine cell
	// takes its containing coarse cell's value), exactly the blockiness
	// that costs the coarse run correlation against the sharp analysis.
	const radius = 0.22
	maskF := synthclim.RegionMask(mf, cs.RainLat-0.04, cs.RainLon, radius)
	obsF := cs.RainfallOnMesh(mf)

	rg := coarse.NewRegridder(mf, mc) // fine cell -> containing coarse cell
	rainCUp := make([]float64, mf.NCells)
	for c, cc := range rg.Assignment() {
		rainCUp[c] = rainC[cc]
	}

	res := Fig7Result{
		CorrCoarse:  synthclim.SpatialCorrelation(mf, rainCUp, obsF, maskF),
		CorrFine:    synthclim.SpatialCorrelation(mf, rainF, obsF, maskF),
		CoarseLabel: fmt.Sprintf("G%dL%d", cfg.CoarseLevel, cfg.CoarseLayers),
		FineLabel:   fmt.Sprintf("G%dL%d", cfg.FineLevel, cfg.FineLayers),
	}
	peak := func(r []float64) float64 {
		best := 0.0
		for c := 0; c < mf.NCells; c++ {
			if maskF[c] && r[c] > best {
				best = r[c]
			}
		}
		return best
	}
	res.PeakObsFine = peak(obsF)
	res.PeakCoarse = peak(rainCUp)
	res.PeakFine = peak(rainF)
	return res
}

// Rows renders the Fig. 7 result.
func (r Fig7Result) Rows() []string {
	return []string{
		fmt.Sprintf("%-10s %-28s %s", "member", "corr vs CMPA (North China)", "regional peak rain (mm/day)"),
		fmt.Sprintf("%-10s %-28.3f %.1f", "CMPA obs", 1.0, r.PeakObsFine),
		fmt.Sprintf("%-10s %-28.3f %.1f", r.CoarseLabel, r.CorrCoarse, r.PeakCoarse),
		fmt.Sprintf("%-10s %-28.3f %.1f", r.FineLabel, r.CorrFine, r.PeakFine),
	}
}
