package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestWriteChaos runs the full chaos experiment at CI scale and checks
// the artifacts carry the acceptance evidence: bitwise recovery from
// rank death and from a sentinel-tripping bit flip, and an ML fallback
// with finite outputs.
func TestWriteChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-leg fault-injection run")
	}
	dir := t.TempDir()
	res, err := WriteChaos(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []ChaosLeg{res.RankDeath, res.BitFlip} {
		if leg.Err != "" {
			t.Errorf("%s leg failed: %s", leg.Profile, leg.Err)
		}
		if !leg.Bitwise {
			t.Errorf("%s leg did not recover bitwise", leg.Profile)
		}
		if leg.Recoveries == 0 {
			t.Errorf("%s leg recorded no recovery", leg.Profile)
		}
	}
	if res.RecoveryTotal < 2 {
		t.Errorf("grist_recovery_total = %d, want >= 2", res.RecoveryTotal)
	}
	if res.SentinelTrips == 0 {
		t.Error("bit-flip leg tripped no sentinel")
	}
	if res.MLFallbacks == 0 || !res.MLOutputsFinite {
		t.Errorf("ML leg: fallbacks=%d finite=%v", res.MLFallbacks, res.MLOutputsFinite)
	}

	var back ChaosResult
	raw, err := os.ReadFile(filepath.Join(dir, "CHAOS_recovery.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.RecoveryTotal != res.RecoveryTotal {
		t.Error("CHAOS_recovery.json does not round-trip")
	}
	var trips []SentinelTrip
	raw, err = os.ReadFile(filepath.Join(dir, "CHAOS_sentinels.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &trips); err != nil {
		t.Fatal(err)
	}
	if len(trips) == 0 {
		t.Error("CHAOS_sentinels.json holds no trip history")
	}
	if len(res.Rows()) == 0 {
		t.Error("no report rows")
	}
}
