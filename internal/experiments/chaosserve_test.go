package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// A scaled-down run must uphold all three serving invariants and land
// the artifact on disk.
func TestChaosServeInvariants(t *testing.T) {
	cfg := DefaultChaosServeConfig()
	cfg.Dir = t.TempDir()
	cfg.Queries = 400 // enough to exercise every endpoint, cheap in CI

	res, err := RunChaosServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legs) != len(chaosServeProfiles) {
		t.Fatalf("legs = %d, want %d", len(res.Legs), len(chaosServeProfiles))
	}
	if !res.ZeroNonBreaker5xx {
		t.Error("storage faults surfaced as non-breaker 5xx")
	}
	if !res.AllChecksumsMatch {
		t.Error("a published snapshot diverged from the clean reference (corrupt bytes served)")
	}
	if !res.AllRecovered {
		t.Errorf("a leg failed to recover within %d polls", cfg.RecoveryPollBound)
	}
	if res.QuarantinedTotal == 0 {
		t.Error("no epoch was ever quarantined — the chaos is not injecting")
	}
	for name, leg := range res.Legs {
		if leg.Load.OK == 0 {
			t.Errorf("leg %s: no query succeeded", name)
		}
		if leg.Load.Client4xx > 0 {
			t.Errorf("leg %s: %d client 4xx from the well-formed workload", name, leg.Load.Client4xx)
		}
		if leg.EpochsProduced == 0 {
			t.Errorf("leg %s: producer never committed an epoch", name)
		}
	}
	// The flaky and torn profiles must actually provoke quarantines;
	// fsslow only delays, so it is allowed zero.
	if res.Legs["fstorn"].QuarantinedTotal == 0 {
		t.Error("fstorn: torn renames never quarantined an epoch")
	}

	for _, r := range res.Rows() {
		t.Log(r)
	}
}

func TestWriteChaosServeArtifact(t *testing.T) {
	dir := t.TempDir()
	res, err := WriteChaosServe(dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(filepath.Join(dir, "CHAOS_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	var decoded ChaosServeResult
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Seed != res.Seed || len(decoded.Legs) != len(res.Legs) {
		t.Fatalf("artifact round-trip mismatch: %+v vs %+v", decoded, res)
	}
	// The artifact must expose the scalar verdicts CheckBench pins.
	var raw map[string]any
	if err := json.Unmarshal(buf, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"zero_non_breaker_5xx", "all_checksums_match", "all_recovered",
		"quarantined_total", "max_recovery_polls"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("CHAOS_serve.json missing top-level gate field %q", key)
		}
	}
}
