// Package experiments implements the reproduction of every table and
// figure in the paper's evaluation section. Each experiment returns a
// structured result; cmd/gristbench renders them as the paper-style
// rows, and the repository-level benchmarks regenerate them under
// `go test -bench`. The per-experiment index lives in DESIGN.md.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"gristgo/internal/mesh"
	"gristgo/internal/perfmodel"
	"gristgo/internal/precision"
	"gristgo/internal/sunway"
	"gristgo/internal/synthclim"
)

// Table1Rows renders the training-period table (Table 1).
func Table1Rows() []string {
	rows := []string{fmt.Sprintf("%-22s %-22s %s", "Time period", "Oceanic Niño Index", "RMM index")}
	for _, p := range synthclim.Table1() {
		rows = append(rows, fmt.Sprintf("%-22s %+.1f (%s)%*s %.2f to %.2f",
			p.Label, p.ONI, p.ENSOPhase, 10-len(p.ENSOPhase), "", p.RMMMin, p.RMMMax))
	}
	return rows
}

// Table2Rows renders the grid census table (Table 2). Grid statistics
// come from the closed forms; levels <= verify report the counts of a
// really generated mesh as a cross-check.
func Table2Rows(verify int) []string {
	rows := []string{fmt.Sprintf("%-5s %-12s %-6s %-22s %-9s %-9s %-9s %s",
		"Label", "Res (km)", "Layers", "dt dyn/trac/phy/rad", "Cells", "Edges", "Verts", "check")}
	for _, g := range mesh.Table2() {
		c := mesh.Census(g.Level)
		check := "-"
		if g.Level <= verify {
			m := mesh.New(g.Level)
			if int64(m.NCells) == c.Cells && int64(m.NEdges) == c.Edges && int64(m.NVerts) == c.Verts {
				check = "mesh OK"
			} else {
				check = "MISMATCH"
			}
		}
		rows = append(rows, fmt.Sprintf("%-5s %5.2f~%-6.2f %-6d %4.0f/%3.0f/%4.0f/%4.0f   %9s %9s %9s %s",
			g.Label, c.MinResKm, c.MaxResKm, g.Layers,
			g.Steps.Dyn, g.Steps.Trac, g.Steps.Phy, g.Steps.Rad,
			human(c.Cells), human(c.Edges), human(c.Verts), check))
	}
	return rows
}

func human(n int64) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%.3gM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.3gK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

// Table3Rows renders the scheme-configuration table (Table 3).
func Table3Rows() []string {
	rows := []string{fmt.Sprintf("%-8s %-18s %s", "Label", "Dycore", "Physics")}
	for _, s := range perfmodel.AllSchemes() {
		dy := "double precision"
		if s.Mode.String() == "MIX" {
			dy = "mixed precision"
		}
		ph := "Conventional"
		if s.ML {
			ph = "ML-physics"
		}
		rows = append(rows, fmt.Sprintf("%-8s %-18s %s", s.Label(), dy, ph))
	}
	return rows
}

// Fig2Rows renders the modeling-effort landscape (Fig. 2).
func Fig2Rows() []string {
	m := perfmodel.NewMachine()
	rows := []string{fmt.Sprintf("%-30s %-16s %-5s %-8s %-9s %s",
		"Model", "Machine", "Year", "Res(km)", "SYPD", "Note")}
	for _, e := range append(perfmodel.Fig2Literature(), perfmodel.Fig2Ours(m)...) {
		rows = append(rows, fmt.Sprintf("%-30s %-16s %-5d %-8.2f %-9.3f %s",
			e.Model, e.Machine, e.Year, e.ResolutionKm, e.SYPD, e.Note))
	}
	return rows
}

// Fig9Result carries the kernel speedup table of Fig. 9.
type Fig9Result struct {
	Kernels  []string
	Variants []string
	// Speedup[k][v] relative to MPE-DP.
	Speedup [][]float64
	// HitRate[k][v] LDCache hit ratios of the CPE variants.
	HitRate [][]float64
}

// RunFig9 executes the Fig. 9 study on the given mesh workload.
func RunFig9(level, nlev int) Fig9Result {
	m := mesh.New(level)
	variants := sunway.Fig9Variants()
	var res Fig9Result
	for _, v := range variants {
		res.Variants = append(res.Variants, v.Label())
	}
	for _, k := range sunway.Kernels() {
		base, _ := k.Run(sunway.Variant{}, m, nlev)
		var sp, hr []float64
		for _, v := range variants {
			s, _ := k.Run(v, m, nlev)
			sp = append(sp, base.Seconds/s.Seconds)
			hr = append(hr, s.HitRate())
		}
		res.Kernels = append(res.Kernels, k.Name)
		res.Speedup = append(res.Speedup, sp)
		res.HitRate = append(res.HitRate, hr)
	}
	return res
}

// Rows renders the Fig. 9 result.
func (r Fig9Result) Rows() []string {
	head := fmt.Sprintf("%-36s", "kernel")
	for _, v := range r.Variants {
		head += fmt.Sprintf("%12s", v)
	}
	rows := []string{head}
	for i, k := range r.Kernels {
		line := fmt.Sprintf("%-36s", k)
		for _, s := range r.Speedup[i] {
			line += fmt.Sprintf("%11.1fx", s)
		}
		rows = append(rows, line)
	}
	return rows
}

// Fig10Rows renders the weak-scaling study (Fig. 10) for MIX-PHY and
// MIX-ML.
func Fig10Rows() []string {
	m := perfmodel.NewMachine()
	rows := []string{fmt.Sprintf("%-8s %-9s %-6s %-10s %-8s %-8s %s",
		"Scheme", "NCG", "Grid", "SDPD", "Eff%", "Comm%", "Cores")}
	for _, s := range []perfmodel.Scheme{
		{Mode: precision.Mixed, ML: false},
		{Mode: precision.Mixed, ML: true},
	} {
		for _, p := range m.WeakScaling(s) {
			rows = append(rows, fmt.Sprintf("%-8s %-9d G%-5d %-10.1f %-8.1f %-8.1f %s",
				s.Label(), p.NCG, p.Level, p.R.SDPD, p.EffPct, 100*p.R.CommShare, human(int64(p.NCG)*390/6)))
		}
	}
	return rows
}

// Fig11Rows renders the strong-scaling study (Fig. 11): all G12 schemes
// plus G11S MIX-ML.
func Fig11Rows() []string {
	m := perfmodel.NewMachine()
	rows := []string{fmt.Sprintf("%-8s %-10s %-9s %-10s %-8s %s",
		"Grid", "Scheme", "NCG", "SDPD", "Eff%", "CacheHit")}
	for _, s := range perfmodel.AllSchemes() {
		for _, p := range m.StrongScaling(12, 30, perfmodel.G12Steps(), s) {
			rows = append(rows, fmt.Sprintf("%-8s %-10s %-9d %-10.1f %-8.1f %.3f",
				"G12", s.Label(), p.NCG, p.R.SDPD, p.EffPct, p.R.CacheHit))
		}
	}
	s := perfmodel.Scheme{Mode: precision.Mixed, ML: true}
	for _, p := range m.StrongScaling(11, 30, perfmodel.G11SSteps(), s) {
		rows = append(rows, fmt.Sprintf("%-8s %-10s %-9d %-10.1f %-8.1f %.3f",
			"G11S", s.Label(), p.NCG, p.R.SDPD, p.EffPct, p.R.CacheHit))
	}
	return rows
}

// RainMapASCII renders a cell rainfall field as a coarse lat-lon ASCII
// map for terminal inspection (used by the Doksuri and climate
// examples).
func RainMapASCII(m *mesh.Mesh, field []float64, latMin, latMax, lonMin, lonMax float64, w, h int) string {
	grid := make([][]float64, h)
	cnt := make([][]int, h)
	for i := range grid {
		grid[i] = make([]float64, w)
		cnt[i] = make([]int, w)
	}
	for c := 0; c < m.NCells; c++ {
		lat, lon := m.CellLat[c], m.CellLon[c]
		if lat < latMin || lat > latMax || lon < lonMin || lon > lonMax {
			continue
		}
		x := int(float64(w-1) * (lon - lonMin) / (lonMax - lonMin))
		y := int(float64(h-1) * (latMax - lat) / (latMax - latMin))
		grid[y][x] += field[c]
		cnt[y][x]++
	}
	var maxV float64
	for y := range grid {
		for x := range grid[y] {
			if cnt[y][x] > 0 {
				grid[y][x] /= float64(cnt[y][x])
				if grid[y][x] > maxV {
					maxV = grid[y][x]
				}
			}
		}
	}
	shades := " .:-=+*#%@"
	var b strings.Builder
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if cnt[y][x] == 0 {
				b.WriteByte(' ')
				continue
			}
			lvl := 0
			if maxV > 0 {
				lvl = int(math.Sqrt(grid[y][x]/maxV) * float64(len(shades)-1))
			}
			b.WriteByte(shades[lvl])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
