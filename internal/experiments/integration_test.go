package experiments

import (
	"math"
	"testing"
)

// TestFig7ResolutionOrdering runs a reduced Doksuri case end to end and
// asserts the paper's claim: the finer-horizontal member beats the
// coarser one against the common analysis despite having fewer vertical
// levels. ~1 minute; skipped with -short.
func TestFig7ResolutionOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("model integration (~1 min)")
	}
	cfg := DefaultFig7Config()
	cfg.Hours = 6
	r := RunFig7(cfg)
	if math.IsNaN(r.CorrCoarse) || math.IsNaN(r.CorrFine) {
		t.Fatalf("NaN correlations: %+v", r)
	}
	if r.CorrFine <= 0 {
		t.Errorf("fine member uncorrelated with the analysis: %.3f", r.CorrFine)
	}
	if r.CorrFine <= r.CorrCoarse {
		t.Errorf("fine member (%.3f) did not beat coarse (%.3f)", r.CorrFine, r.CorrCoarse)
	}
	if r.PeakFine <= 0 || r.PeakCoarse <= 0 {
		t.Errorf("members produced no regional rain: %+v", r)
	}
}

// TestFig8PipelineEndToEnd runs a reduced ML-physics pipeline and
// asserts the §3.2 claims: the modules learn, the coupled run is stable,
// and the suite transfers across resolution. ~40 s; skipped with -short.
func TestFig8PipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline (~40 s)")
	}
	cfg := DefaultFig8Config()
	cfg.TrainDays = 1
	cfg.Train.Epochs = 15
	r := RunFig8(cfg)

	if !r.Stable {
		t.Error("ML-coupled run unstable")
	}
	if r.TendTestLoss > 0.5 || math.IsNaN(r.TendTestLoss) {
		t.Errorf("tendency CNN did not learn: loss %.4f", r.TendTestLoss)
	}
	if r.RadTestLoss > 0.5 || math.IsNaN(r.RadTestLoss) {
		t.Errorf("radiation MLP did not learn: loss %.4f", r.RadTestLoss)
	}
	if r.CorrTrainRes < 0.3 {
		t.Errorf("ML rainfall pattern weakly correlated at training res: %.3f", r.CorrTrainRes)
	}
	if r.CorrApplyRes < 0.3 {
		t.Errorf("ML rainfall pattern does not transfer across resolution: %.3f", r.CorrApplyRes)
	}
	if r.BandContrastConv <= 1 {
		t.Errorf("conventional suite lost the ITCZ band: contrast %.2f", r.BandContrastConv)
	}
	if r.BandContrastML <= 1 {
		t.Errorf("ML suite lost the ITCZ band: contrast %.2f", r.BandContrastML)
	}
}
