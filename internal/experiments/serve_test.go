package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// A scaled-down serve benchmark must complete with zero 5xx, throttle
// the greedy tenant, and emit a parseable BENCH_serve.json shape.
func TestRunServeBenchSmall(t *testing.T) {
	cfg := ServeBenchConfig{
		GridLevel: 3,
		NLev:      4,
		Epochs:    2,
		Queries:   30000,
		Workers:   4,
		Tiles:     16,
		CacheFrac: 0.4,
		QuotaRate: 500,
	}
	if testing.Short() {
		cfg.Queries = 6000
	}
	res := RunServeBench(cfg)
	if res.Queries != int64(cfg.Queries) {
		t.Fatalf("fired %d queries, want %d", res.Queries, cfg.Queries)
	}
	if res.Server5xx != 0 {
		t.Fatalf("benchmark produced %d server 5xx", res.Server5xx)
	}
	if res.Client4xx != 0 {
		t.Fatalf("benchmark produced %d client 4xx", res.Client4xx)
	}
	if res.OK == 0 {
		t.Fatal("no query succeeded")
	}
	if res.Quota429 == 0 {
		t.Fatal("greedy tenant was never throttled")
	}
	if res.HitRate <= 0 {
		t.Fatal("hit rate never moved")
	}
	if res.TileBuilds == 0 {
		t.Fatal("no tile was built")
	}
	if res.P99Sec <= 0 || res.HitP99Sec <= 0 {
		t.Fatal("latency percentiles empty")
	}

	// The artifact has the fields CI consumers read.
	dir := t.TempDir()
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_serve.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	raw, _ := os.ReadFile(path)
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"latency_p50_s", "latency_p99_s", "cache_hit_rate", "coalesce_ratio", "server_5xx", "quota_429"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("BENCH_serve.json missing %q", key)
		}
	}
}
