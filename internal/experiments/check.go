package experiments

// Benchmark regression gate: CheckBench compares freshly generated
// BENCH_*.json artifacts against a committed baseline of per-metric
// tolerance windows. The baseline is data, not code — widening a window
// is a reviewed diff on bench.baseline.json, so silent performance or
// correctness drift cannot ride in on an unrelated change.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// BaselineEntry is one gated metric: a dotted path into the named
// artifact and the inclusive [Min, Max] window its value must land in.
// Booleans are compared as 0/1, so `"min": 1, "max": 1` pins a verdict
// field to true.
type BaselineEntry struct {
	File string  `json:"file"`
	Path string  `json:"path"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// LoadBaseline reads a bench.baseline.json tolerance file.
func LoadBaseline(path string) ([]BaselineEntry, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(buf, &entries); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return entries, nil
}

// lookup resolves a dotted path ("a.b.c") in a decoded JSON document,
// returning the numeric value (bools as 0/1).
func lookup(doc any, path string) (float64, error) {
	cur := doc
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("%q: not an object at %q", path, part)
		}
		cur, ok = m[part]
		if !ok {
			return 0, fmt.Errorf("%q: no field %q", path, part)
		}
	}
	switch v := cur.(type) {
	case float64:
		return v, nil
	case bool:
		if v {
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("%q: not a number or bool", path)
}

// CheckBench verifies every baseline entry against the artifacts in
// dir. It returns one report line per entry plus ok=false when any
// metric lands outside its window (or an artifact/field is missing —
// a gate that silently skips is not a gate). A non-empty files list
// restricts the gate to entries on those artifacts, so CI jobs that
// generate different artifact subsets (bench vs chaos-serve) each gate
// exactly what they produced.
func CheckBench(dir, baselinePath string, files ...string) ([]string, bool, error) {
	entries, err := LoadBaseline(baselinePath)
	if err != nil {
		return nil, false, err
	}
	if len(files) > 0 {
		want := map[string]bool{}
		for _, f := range files {
			want[f] = true
		}
		kept := entries[:0]
		for _, e := range entries {
			if want[e.File] {
				kept = append(kept, e)
			}
		}
		entries = kept
		if len(entries) == 0 {
			return nil, false, fmt.Errorf("%s: no baseline entries for %v (a gate that checks nothing is not a gate)", baselinePath, files)
		}
	}
	docs := map[string]any{}
	var rows []string
	ok := true
	for _, e := range entries {
		doc, loaded := docs[e.File]
		if !loaded {
			buf, err := os.ReadFile(filepath.Join(dir, e.File))
			if err != nil {
				rows = append(rows, fmt.Sprintf("FAIL %-22s %-30s artifact missing: %v", e.File, e.Path, err))
				ok = false
				docs[e.File] = nil
				continue
			}
			if err := json.Unmarshal(buf, &doc); err != nil {
				rows = append(rows, fmt.Sprintf("FAIL %-22s %-30s unparsable: %v", e.File, e.Path, err))
				ok = false
				docs[e.File] = nil
				continue
			}
			docs[e.File] = doc
		}
		if doc == nil {
			rows = append(rows, fmt.Sprintf("FAIL %-22s %-30s artifact missing", e.File, e.Path))
			ok = false
			continue
		}
		v, err := lookup(doc, e.Path)
		if err != nil {
			rows = append(rows, fmt.Sprintf("FAIL %-22s %-30s %v", e.File, e.Path, err))
			ok = false
			continue
		}
		if v < e.Min || v > e.Max {
			rows = append(rows, fmt.Sprintf("FAIL %-22s %-30s %g outside [%g, %g]", e.File, e.Path, v, e.Min, e.Max))
			ok = false
			continue
		}
		rows = append(rows, fmt.Sprintf("ok   %-22s %-30s %g in [%g, %g]", e.File, e.Path, v, e.Min, e.Max))
	}
	return rows, ok, nil
}
