package experiments

import (
	"os"
	"strings"
	"testing"

	"gristgo/internal/mesh"
)

func TestTable1Rows(t *testing.T) {
	rows := Table1Rows()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"El Niño", "La Niña", "1998", "1988", "+2.2", "-1.5"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2RowsVerifyMesh(t *testing.T) {
	rows := Table2Rows(4) // really verify only cheap levels
	if len(rows) != 8 {   // header + 7 grids
		t.Fatalf("rows = %d", len(rows))
	}
	joined := strings.Join(rows, "\n")
	for _, want := range []string{"G12", "G11W", "G11S", "168M", "41.9M"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table 2 missing %q\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "MISMATCH") {
		t.Error("census/mesh mismatch flagged")
	}
}

func TestTable3Rows(t *testing.T) {
	joined := strings.Join(Table3Rows(), "\n")
	for _, want := range []string{"DP-PHY", "DP-ML", "MIX-PHY", "MIX-ML", "mixed precision", "ML-physics"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestFig2Rows(t *testing.T) {
	joined := strings.Join(Fig2Rows(), "\n")
	for _, want := range []string{"SCREAM", "COSMO", "this work", "Sunway"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Fig 2 missing %q", want)
		}
	}
}

func TestRunFig9SmallWorkload(t *testing.T) {
	r := RunFig9(2, 6)
	if len(r.Kernels) != 6 || len(r.Variants) != 5 {
		t.Fatalf("shape: %d kernels, %d variants", len(r.Kernels), len(r.Variants))
	}
	for i, name := range r.Kernels {
		// MPE-DP column is the baseline: speedup 1.
		if r.Speedup[i][0] != 1 {
			t.Errorf("%s: baseline speedup %v", name, r.Speedup[i][0])
		}
		for v, s := range r.Speedup[i] {
			if s <= 0 {
				t.Errorf("%s variant %s: speedup %v", name, r.Variants[v], s)
			}
		}
	}
	rows := r.Rows()
	if len(rows) != 7 {
		t.Errorf("rows = %d", len(rows))
	}
}

func TestFig10And11Rows(t *testing.T) {
	f10 := strings.Join(Fig10Rows(), "\n")
	for _, want := range []string{"MIX-PHY", "MIX-ML", "524288", "G12"} {
		if !strings.Contains(f10, want) {
			t.Errorf("Fig 10 missing %q", want)
		}
	}
	f11 := strings.Join(Fig11Rows(), "\n")
	for _, want := range []string{"G11S", "DP-PHY", "32768"} {
		if !strings.Contains(f11, want) {
			t.Errorf("Fig 11 missing %q", want)
		}
	}
}

func TestRainMapASCII(t *testing.T) {
	m := newTestMeshForMap()
	field := make([]float64, m.NCells)
	for c := range field {
		field[c] = float64(c % 13)
	}
	art := RainMapASCII(m, field, -1.0, 1.0, -2.0, 2.0, 30, 10)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("map has %d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) > 30 {
			t.Fatalf("line too long: %d", len(l))
		}
	}
	// Nonempty content somewhere.
	if !strings.ContainsAny(art, ".:-=+*#%@") {
		t.Error("map is blank")
	}
}

func newTestMeshForMap() *mesh.Mesh { return mesh.New(3) }

func TestWriteScalingCSV(t *testing.T) {
	dir := t.TempDir()
	if err := WriteScalingCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2.csv", "fig9.csv", "fig10.csv", "fig11.csv"} {
		b, err := os.ReadFile(dir + "/" + name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(b), "\n")
		if lines < 3 {
			t.Errorf("%s has only %d lines", name, lines)
		}
	}
	// fig11.csv must carry the anchor row near 177 SDPD.
	b, _ := os.ReadFile(dir + "/fig11.csv")
	if !strings.Contains(string(b), "G12,MIX-ML,524288") {
		t.Error("fig11.csv missing the G12 MIX-ML full-machine row")
	}
}

func TestWriteRainfallCSV(t *testing.T) {
	m := newTestMeshForMap()
	field := make([]float64, m.NCells)
	path := t.TempDir() + "/rain.csv"
	if err := WriteRainfallCSV(path, m, field); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if strings.Count(string(b), "\n") != m.NCells+1 {
		t.Error("rainfall CSV row count wrong")
	}
}
