package experiments

// Storage-plane chaos for the serving path: a producer committing
// epochs through a fault-injecting filesystem while a poller publishes
// them and a load replay queries the plane, per fault profile. The
// distilled CHAOS_serve.json asserts the three serving invariants the
// chaos-serve CI job gates on:
//
//  1. zero non-breaker 5xx — storage faults degrade (quarantine,
//     staleness headers, breaker sheds) but never surface as
//     unexplained server errors;
//  2. zero corrupt bytes served — every published snapshot matches the
//     checksum of the same epoch produced with injection off (CRC
//     verification plus quarantine keeps torn/flipped data out of the
//     serving window);
//  3. bounded recovery — once injection stops, continued production
//     drains the quarantine (re-verify or age out of the retention
//     window) and staleness returns to zero within a bounded number of
//     polls.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gristgo/internal/core"
	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/serve"
	"gristgo/internal/telemetry"
	"gristgo/internal/vfs"
)

// ChaosServeConfig drives the serving-chaos experiment.
type ChaosServeConfig struct {
	GridLevel int
	NLev      int
	Epochs    int // epochs produced under fault injection
	Queries   int // queries per load burst (one burst per produced epoch)
	Retain    int
	Tiles     int
	MaxStale  int
	Seed      int64
	Dir       string // scratch + artifact directory

	// RecoveryPollBound caps the produce+poll iterations allowed for the
	// plane to fully recover after injection stops.
	RecoveryPollBound int
}

// DefaultChaosServeConfig returns the CI-scale setup: a G3 mesh, six
// epochs per fault profile, and enough recovery headroom for a
// permanently torn epoch to age out of the retention window.
func DefaultChaosServeConfig() ChaosServeConfig {
	return ChaosServeConfig{
		GridLevel: 3, NLev: 4,
		Epochs: 6, Queries: 2_000,
		Retain: 4, Tiles: 16, MaxStale: 2,
		Seed:              11,
		RecoveryPollBound: 24,
	}
}

// ChaosServeLeg is one fault profile's outcome.
type ChaosServeLeg struct {
	Profile        string `json:"profile"`
	EpochsProduced int    `json:"epochs_produced"` // committed under injection (incl. torn commits)
	ProduceRetries int    `json:"produce_retries"` // writer-side retries absorbed by fault injection
	PollErrors     int    `json:"poll_errors"`     // polls that returned an error

	QuarantinedTotal   int64 `json:"quarantined_total"`
	UnquarantinedTotal int64 `json:"unquarantined_total"`

	ChecksumsMatch bool `json:"checksums_match"` // every served snapshot == clean reference
	Recovered      bool `json:"recovered"`
	RecoveryPolls  int  `json:"recovery_polls"`

	Load serve.LoadReport `json:"load"`
}

// ChaosServeResult is the JSON payload of CHAOS_serve.json. The
// top-level verdict fields are scalars so bench.baseline.json can pin
// them without reaching into per-leg structure.
type ChaosServeResult struct {
	Seed int64                    `json:"seed"`
	Legs map[string]ChaosServeLeg `json:"legs"`

	ZeroNonBreaker5xx bool  `json:"zero_non_breaker_5xx"`
	AllChecksumsMatch bool  `json:"all_checksums_match"`
	AllRecovered      bool  `json:"all_recovered"`
	QuarantinedTotal  int64 `json:"quarantined_total"`
	MaxRecoveryPolls  int   `json:"max_recovery_polls"`
}

// chaosServeProfiles lists the fault profiles each run exercises.
var chaosServeProfiles = []string{"fsflaky", "fstorn", "fsslow"}

// cleanChecksums derives the uninjected truth: the snapshot checksum
// of every epoch the producer would commit, computed directly from the
// deterministic per-epoch state without touching a filesystem.
func cleanChecksums(m *mesh.Mesh, nlev, epochs, extra int) map[int]uint64 {
	sums := make(map[int]uint64, epochs+extra)
	for e := 0; e < epochs+extra; e++ {
		snap := serve.SnapshotFromState(e, e*10, benchState(m, nlev, e))
		sums[e] = snap.Checksum()
	}
	return sums
}

// addLoad accumulates one burst's counters into the leg aggregate
// (latency percentiles are per-burst and not meaningfully summable, so
// the aggregate keeps the last burst's).
func addLoad(acc *serve.LoadReport, b serve.LoadReport) {
	qs := acc.Queries
	ok, c4, q429, b429, br503, s5 := acc.OK, acc.Client4xx, acc.Quota429, acc.Busy429, acc.Breaker503, acc.Server5xx
	dur := acc.DurationSec
	*acc = b
	acc.Queries += qs
	acc.OK += ok
	acc.Client4xx += c4
	acc.Quota429 += q429
	acc.Busy429 += b429
	acc.Breaker503 += br503
	acc.Server5xx += s5
	acc.DurationSec += dur
	if acc.DurationSec > 0 {
		acc.QPS = float64(acc.Queries) / acc.DurationSec
	}
}

// quarantineCount sums the reason-labelled quarantine counter.
func quarantineCount(reg *telemetry.Registry) int64 {
	var total int64
	for _, reason := range []string{serve.FailMissing, serve.FailTorn, serve.FailCorrupt, serve.FailIO} {
		total += reg.Counter("grist_serve_quarantined_total", "reason", reason).Value()
	}
	return total
}

// runChaosServeLeg runs producer + poller + load under one fault
// profile, then recovers with injection off.
func runChaosServeLeg(m *mesh.Mesh, cfg ChaosServeConfig, prof fault.FSProfile, sums map[int]uint64) (ChaosServeLeg, error) {
	leg := ChaosServeLeg{Profile: prof.Name, ChecksumsMatch: true}

	dir := filepath.Join(cfg.Dir, "chaosserve-"+prof.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return leg, err
	}
	ffs := fault.NewFS(vfs.OS, cfg.Seed, prof)
	pl := core.NewDistPlan(m, cfg.NLev, 1, 12345)
	st, err := core.NewShardStoreFS(dir, pl, ffs)
	if err != nil {
		return leg, err
	}

	reg := telemetry.NewRegistry()
	srv := serve.NewServer(m, serve.Config{
		Tiles:    cfg.Tiles,
		Retain:   cfg.Retain,
		MaxStale: cfg.MaxStale,
	}, reg)
	poller := serve.NewShardPoller(st, srv.Engine.Store())
	poller.SetSeed(cfg.Seed)
	poller.SetMetrics(reg)

	// produce commits one epoch through the (possibly faulty) store,
	// retrying explicit write errors a few times the way a real producer
	// would; torn renames report success and are the poller's problem.
	produce := func(epoch int) {
		s := benchState(m, cfg.NLev, epoch)
		step := epoch * 10
		for attempt := 0; attempt < 5; attempt++ {
			if err := st.WriteShard(epoch, 0, step, s); err != nil {
				leg.ProduceRetries++
				continue
			}
			if err := st.Commit(epoch, step); err != nil {
				leg.ProduceRetries++
				continue
			}
			leg.EpochsProduced++
			return
		}
	}

	// verifyServed asserts every snapshot currently in the serving
	// window is bitwise the clean reference for its epoch.
	verifyServed := func() {
		store := srv.Engine.Store()
		for _, e := range store.Epochs() {
			snap, ok := store.At(e)
			if !ok {
				continue
			}
			if snap.Checksum() != sums[e] {
				leg.ChecksumsMatch = false
			}
		}
	}

	poll := func() {
		if _, err := poller.Poll(); err != nil {
			leg.PollErrors++
		}
		srv.SetStaleness(poller.Staleness())
		srv.SetQuarantine(poller.Quarantined())
	}

	// Phase 1: produce + poll + load under injection.
	for e := 0; e < cfg.Epochs; e++ {
		produce(e)
		poll()
		verifyServed()
		if srv.Engine.Store().Latest() == nil {
			continue // nothing published yet; a load burst would be all 404s
		}
		burst := serve.RunLoadInProcess(srv.Mux(), srv.Engine, serve.LoadConfig{
			Queries: cfg.Queries,
			Seed:    cfg.Seed + int64(e),
		})
		addLoad(&leg.Load, burst)
	}

	// Phase 2: injection off; continued production must drain the
	// quarantine (re-verify or age out) and staleness within the bound.
	ffs.SetActive(false)
	next := cfg.Epochs
	for i := 0; i < cfg.RecoveryPollBound; i++ {
		if len(poller.Quarantined()) == 0 && poller.Staleness() == 0 {
			break
		}
		produce(next)
		next++
		poll()
		leg.RecoveryPolls++
	}
	leg.Recovered = len(poller.Quarantined()) == 0 && poller.Staleness() == 0
	verifyServed()

	// Post-recovery burst: the healthy plane serves clean.
	if srv.Engine.Store().Latest() != nil {
		burst := serve.RunLoadInProcess(srv.Mux(), srv.Engine, serve.LoadConfig{
			Queries: cfg.Queries,
			Seed:    cfg.Seed + 1000,
		})
		addLoad(&leg.Load, burst)
	}

	leg.QuarantinedTotal = quarantineCount(reg)
	leg.UnquarantinedTotal = reg.Counter("grist_serve_unquarantined_total").Value()
	return leg, nil
}

// RunChaosServe runs every fault profile and folds the verdicts.
func RunChaosServe(cfg ChaosServeConfig) (ChaosServeResult, error) {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	sums := cleanChecksums(m, cfg.NLev, cfg.Epochs, cfg.RecoveryPollBound)
	res := ChaosServeResult{
		Seed:              cfg.Seed,
		Legs:              map[string]ChaosServeLeg{},
		ZeroNonBreaker5xx: true,
		AllChecksumsMatch: true,
		AllRecovered:      true,
	}
	for _, name := range chaosServeProfiles {
		prof, err := fault.ParseFSProfile(name)
		if err != nil {
			return res, err
		}
		leg, err := runChaosServeLeg(m, cfg, prof, sums)
		if err != nil {
			return res, fmt.Errorf("leg %s: %w", name, err)
		}
		res.Legs[name] = leg
		if leg.Load.Server5xx > 0 {
			res.ZeroNonBreaker5xx = false
		}
		if !leg.ChecksumsMatch {
			res.AllChecksumsMatch = false
		}
		if !leg.Recovered {
			res.AllRecovered = false
		}
		res.QuarantinedTotal += leg.QuarantinedTotal
		if leg.RecoveryPolls > res.MaxRecoveryPolls {
			res.MaxRecoveryPolls = leg.RecoveryPolls
		}
	}
	return res, nil
}

// Rows renders the result as aligned report lines.
func (r ChaosServeResult) Rows() []string {
	rows := []string{fmt.Sprintf("seed=%d profiles=%d quarantined=%d max recovery polls=%d",
		r.Seed, len(r.Legs), r.QuarantinedTotal, r.MaxRecoveryPolls)}
	for _, name := range chaosServeProfiles {
		l, ok := r.Legs[name]
		if !ok {
			continue
		}
		verdict := "clean"
		if !l.ChecksumsMatch {
			verdict = "CORRUPT BYTES SERVED"
		} else if !l.Recovered {
			verdict = "DID NOT RECOVER"
		} else if l.Load.Server5xx > 0 {
			verdict = "UNEXPLAINED 5xx"
		}
		rows = append(rows, fmt.Sprintf(
			"%-8s %s (produced=%d retries=%d quarantined=%d unquarantined=%d recovery polls=%d 2xx=%d 5xx=%d breaker503=%d)",
			l.Profile, verdict, l.EpochsProduced, l.ProduceRetries,
			l.QuarantinedTotal, l.UnquarantinedTotal, l.RecoveryPolls,
			l.Load.OK, l.Load.Server5xx, l.Load.Breaker503))
	}
	return rows
}

// WriteChaosServe runs the default serving-chaos experiment under dir
// and writes CHAOS_serve.json there.
func WriteChaosServe(dir string) (ChaosServeResult, error) {
	cfg := DefaultChaosServeConfig()
	cfg.Dir = dir
	return WriteChaosServeConfig(cfg)
}

// WriteChaosServeConfig is WriteChaosServe with an explicit
// configuration; the artifact lands in cfg.Dir.
func WriteChaosServeConfig(cfg ChaosServeConfig) (ChaosServeResult, error) {
	res, err := RunChaosServe(cfg)
	if err != nil {
		return res, err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return res, err
	}
	return res, os.WriteFile(filepath.Join(cfg.Dir, "CHAOS_serve.json"), append(buf, '\n'), 0o644)
}
