package experiments

// Elastic-membership experiment: the run-time decomposition exercised
// end to end, distilled into CHAOS_elastic.json for the CI chaos job.
// The scenario is "shrinkgrow": node 1 is killed mid-run, the world
// repartitions over the three survivors and continues from the
// redistributed checkpoint shards, then a scheduled grow re-absorbs a
// fourth node — the world is never restarted from step 0.
//
// Four legs cover the acceptance matrix: DP and mixed precision, each
// with overlapped and blocking halo rounds.
//
//   - DP legs must finish BITWISE identical to an uninjected
//     plain run: per-entity kernels with mesh-ordered stencils plus
//     exact mirrors at step boundaries make DP results decomposition-
//     invariant, so three decomposition epochs leave no trace.
//   - Mixed legs round halo mirrors to FP32 on the wire, so the mirror
//     sets — and the rounding — are decomposition-dependent: bitwise
//     identity is not expected, but the §3.4 5% ps/vor gate must hold.
//   - Overlap vs blocking must stay bitwise identical WITHIN each mode
//     after every repartition (the PR 2 parity invariant, now under a
//     decomposition that changes mid-run).
//
// The grow leg must also measurably reduce the capacity-relative load
// imbalance (the PR 4 gauge): three nodes doing four nodes' work read
// ~4/3, the re-grown world reads ~1.

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"gristgo/internal/core"
	"gristgo/internal/dycore"
	"gristgo/internal/fault"
	"gristgo/internal/mesh"
	"gristgo/internal/precision"
	"gristgo/internal/telemetry"
)

// ElasticConfig drives the elastic experiment.
type ElasticConfig struct {
	GridLevel int
	NLev      int
	NParts    int
	Steps     int
	CkptEvery int
	KillNode  int // node killed mid-run (stable node id)
	KillStep  int
	GrowStep  int // step of the scheduled re-grow
	GrowAdd   int
	Seed      int64
	Dir       string // scratch + artifact directory
}

// DefaultElasticConfig returns the CI-scale shrinkgrow setup: kill node
// 1 at step 4, grow back to four nodes at step 8.
func DefaultElasticConfig() ElasticConfig {
	return ElasticConfig{
		GridLevel: 3, NLev: 4, NParts: 4, Steps: 12, CkptEvery: 2,
		KillNode: 1, KillStep: 4, GrowStep: 8, GrowAdd: 1, Seed: 7,
	}
}

// ElasticLeg is one (mode, halo style) run of the shrinkgrow scenario.
type ElasticLeg struct {
	Mode            string              `json:"mode"`    // "DP" or "MIX"
	Overlap         bool                `json:"overlap"` // overlapped halo rounds (false: blocking)
	Bitwise         bool                `json:"bitwise_vs_clean"`
	PsRelErr        float64             `json:"ps_rel_err"`
	VorRelErr       float64             `json:"vor_rel_err"`
	WithinGate      bool                `json:"within_gate"` // both errors under 5% (§3.4)
	WorldSizes      []int               `json:"world_sizes"`
	Reshapes        []core.ReshapeEvent `json:"reshapes,omitempty"`
	FinalMembers    []int               `json:"final_members"`
	FinalEpoch      int                 `json:"final_epoch"`
	ImbalanceShrunk float64             `json:"imbalance_shrunk"`
	ImbalanceGrown  float64             `json:"imbalance_grown"`
	Err             string              `json:"error,omitempty"`
}

// ElasticResult is the JSON payload of CHAOS_elastic.json.
type ElasticResult struct {
	Seed       int64      `json:"seed"`
	DP         ElasticLeg `json:"dp"`
	DPBlocking ElasticLeg `json:"dp_blocking"`
	Mixed      ElasticLeg `json:"mixed"`
	MixedBlock ElasticLeg `json:"mixed_blocking"`

	// Overlap-vs-blocking bitwise parity within each mode, across all
	// three decomposition epochs.
	ParityDP    bool `json:"overlap_blocking_bitwise_dp"`
	ParityMixed bool `json:"overlap_blocking_bitwise_mixed"`

	// The grow must reduce the capacity-relative imbalance in every leg.
	ImbalanceReduced bool `json:"imbalance_reduced_by_grow"`

	RepartitionTotal int64 `json:"grist_repartition_total"`
	RankFailures     int64 `json:"grist_rank_failures_total"`
	CkptEpochs       int64 `json:"grist_checkpoint_epochs_total"`
}

// elasticGate is the §3.4.1 error threshold.
const elasticGate = 0.05

// elasticRelL2 is the relative L2 error — the same metric the accuracy
// gates use.
func elasticRelL2(a, ref []float64) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - ref[i]
		num += d * d
		den += ref[i] * ref[i]
	}
	return math.Sqrt(num / den)
}

// runElasticLeg runs the shrinkgrow scenario once and scores it against
// the same-mode clean reference. Each leg gets a fresh fault plan (the
// kill is one-shot per plan) and its own checkpoint directory.
func runElasticLeg(m *mesh.Mesh, cfg ElasticConfig, mode precision.Mode, overlap bool,
	clean *dycore.State, dir string, reg *telemetry.Registry) (ElasticLeg, *dycore.State) {

	leg := ElasticLeg{Mode: mode.String(), Overlap: overlap}
	plan := fault.NewPlan(cfg.Seed, fault.Profile{
		Name: "shrinkgrow", KillRank: cfg.KillNode, KillStep: cfg.KillStep,
	})
	final, rep, err := core.RunDistributedDynamicsElastic(m, cfg.NLev, cfg.NParts, chaosInit,
		cfg.Steps, 60.0, core.ElasticOpts{
			Mode: mode, Injector: plan,
			CheckpointEvery: cfg.CkptEvery, Dir: dir,
			Grow:        []core.GrowEvent{{Step: cfg.GrowStep, Add: cfg.GrowAdd}},
			HaloTimeout: 2 * time.Second, SyncTimeout: 2 * time.Second,
			Blocking: !overlap, Capacity: cfg.NParts, Reg: reg,
		})
	if rep != nil {
		leg.WorldSizes, leg.Reshapes = rep.WorldSizes, rep.Reshapes
		leg.FinalMembers, leg.FinalEpoch = rep.FinalMembers, rep.FinalEpoch
		if len(rep.LegImbalance) >= 2 {
			leg.ImbalanceShrunk = rep.LegImbalance[1]
			leg.ImbalanceGrown = rep.LegImbalance[len(rep.LegImbalance)-1]
		}
	}
	if err != nil {
		leg.Err = err.Error()
		return leg, nil
	}
	leg.Bitwise = statesBitwise(final, clean)
	leg.PsRelErr = elasticRelL2(final.SurfacePressure(), clean.SurfacePressure())
	leg.VorRelErr = elasticRelL2(
		dycore.NewFromState(final, precision.DP).VorticityAtLevel(2),
		dycore.NewFromState(clean, precision.DP).VorticityAtLevel(2))
	leg.WithinGate = leg.PsRelErr <= elasticGate && leg.VorRelErr <= elasticGate
	return leg, final
}

// RunElastic runs the four shrinkgrow legs and returns the distilled
// result.
func RunElastic(cfg ElasticConfig) ElasticResult {
	m := mesh.New(cfg.GridLevel).ReorderBFS()
	reg := telemetry.NewRegistry()
	res := ElasticResult{Seed: cfg.Seed}

	cleanDP := core.RunDistributedDynamics(m, cfg.NLev, cfg.NParts, precision.DP, chaosInit, cfg.Steps, 60.0)
	cleanMix := core.RunDistributedDynamics(m, cfg.NLev, cfg.NParts, precision.Mixed, chaosInit, cfg.Steps, 60.0)

	var dpOv, dpBl, mixOv, mixBl *dycore.State
	res.DP, dpOv = runElasticLeg(m, cfg, precision.DP, true, cleanDP,
		filepath.Join(cfg.Dir, "ckpt-elastic-dp"), reg)
	res.DPBlocking, dpBl = runElasticLeg(m, cfg, precision.DP, false, cleanDP,
		filepath.Join(cfg.Dir, "ckpt-elastic-dp-blocking"), reg)
	res.Mixed, mixOv = runElasticLeg(m, cfg, precision.Mixed, true, cleanMix,
		filepath.Join(cfg.Dir, "ckpt-elastic-mix"), reg)
	res.MixedBlock, mixBl = runElasticLeg(m, cfg, precision.Mixed, false, cleanMix,
		filepath.Join(cfg.Dir, "ckpt-elastic-mix-blocking"), reg)

	res.ParityDP = dpOv != nil && dpBl != nil && statesBitwise(dpOv, dpBl)
	res.ParityMixed = mixOv != nil && mixBl != nil && statesBitwise(mixOv, mixBl)
	res.ImbalanceReduced = true
	for _, leg := range []ElasticLeg{res.DP, res.DPBlocking, res.Mixed, res.MixedBlock} {
		if leg.Err != "" || leg.ImbalanceShrunk < leg.ImbalanceGrown+0.2 {
			res.ImbalanceReduced = false
		}
	}
	res.RepartitionTotal = reg.Counter("grist_repartition_total").Value()
	res.RankFailures = reg.Counter("grist_rank_failures_total").Value()
	res.CkptEpochs = reg.Counter("grist_checkpoint_epochs_total").Value()
	return res
}

// Rows renders the result as aligned report lines.
func (r ElasticResult) Rows() []string {
	row := func(name string, l ElasticLeg, wantBitwise bool) string {
		status := "within 5% gate"
		if l.Bitwise {
			status = "bitwise vs clean"
		} else if wantBitwise {
			status = "DIVERGED (bitwise expected)"
		} else if !l.WithinGate {
			status = "GATE EXCEEDED"
		}
		if l.Err != "" {
			status = "FAILED: " + l.Err
		}
		return name + ": " + status +
			" (worlds=" + itoaSlice(l.WorldSizes) +
			" imbalance " + ftoa(l.ImbalanceShrunk) + "->" + ftoa(l.ImbalanceGrown) + ")"
	}
	parity := func(name string, ok bool) string {
		if ok {
			return name + ": overlap == blocking bitwise"
		}
		return name + ": OVERLAP/BLOCKING PARITY BROKEN"
	}
	return []string{
		row("elastic dp", r.DP, true),
		row("elastic dp/blocking", r.DPBlocking, true),
		row("elastic mixed", r.Mixed, false),
		row("elastic mixed/blocking", r.MixedBlock, false),
		parity("parity dp", r.ParityDP),
		parity("parity mixed", r.ParityMixed),
		"counters: repartitions=" + itoa(int(r.RepartitionTotal)) +
			" rank failures=" + itoa(int(r.RankFailures)) +
			" ckpt epochs=" + itoa(int(r.CkptEpochs)),
	}
}

func itoaSlice(xs []int) string {
	out := "["
	for i, x := range xs {
		if i > 0 {
			out += " "
		}
		out += itoa(x)
	}
	return out + "]"
}

func ftoa(x float64) string {
	return strconv.FormatFloat(x, 'f', 2, 64)
}

// WriteElastic runs the default elastic experiment under dir and writes
// CHAOS_elastic.json there.
func WriteElastic(dir string) (ElasticResult, error) {
	cfg := DefaultElasticConfig()
	cfg.Dir = dir
	return WriteElasticConfig(cfg)
}

// WriteElasticConfig is WriteElastic with an explicit configuration.
func WriteElasticConfig(cfg ElasticConfig) (ElasticResult, error) {
	res := RunElastic(cfg)
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return res, err
	}
	return res, os.WriteFile(filepath.Join(cfg.Dir, "CHAOS_elastic.json"), append(buf, '\n'), 0o644)
}
