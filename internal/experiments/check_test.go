package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCheckFixture(t *testing.T, baseline string) (dir, basePath string) {
	t.Helper()
	dir = t.TempDir()
	artifact := `{"ok_flag": true, "nested": {"imbalance": 1.25}, "count": 8}`
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	basePath = filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(basePath, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, basePath
}

func TestCheckBenchWithinWindows(t *testing.T) {
	dir, base := writeCheckFixture(t, `[
		{"file": "BENCH_x.json", "path": "ok_flag", "min": 1, "max": 1},
		{"file": "BENCH_x.json", "path": "nested.imbalance", "min": 1.0, "max": 1.5},
		{"file": "BENCH_x.json", "path": "count", "min": 8, "max": 8}
	]`)
	rows, ok, err := CheckBench(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(rows) != 3 {
		t.Fatalf("ok=%v rows=%v", ok, rows)
	}
}

func TestCheckBenchFlagsDrift(t *testing.T) {
	dir, base := writeCheckFixture(t, `[
		{"file": "BENCH_x.json", "path": "nested.imbalance", "min": 1.0, "max": 1.1}
	]`)
	rows, ok, err := CheckBench(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("drifted metric passed the gate")
	}
	if len(rows) != 1 || !strings.HasPrefix(rows[0], "FAIL") {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCheckBenchMissingIsFailure(t *testing.T) {
	dir, base := writeCheckFixture(t, `[
		{"file": "BENCH_x.json", "path": "no.such.field", "min": 0, "max": 1},
		{"file": "BENCH_gone.json", "path": "anything", "min": 0, "max": 1}
	]`)
	_, ok, err := CheckBench(dir, base)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("missing artifact/field passed the gate — a gate that silently skips is not a gate")
	}
}

func TestCheckBenchCommittedBaselineParses(t *testing.T) {
	// The committed baseline must always load; a syntax error here
	// would disable the CI gate.
	entries, err := LoadBaseline(filepath.Join("..", "..", "bench.baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("committed bench.baseline.json gates nothing")
	}
	for _, e := range entries {
		if e.File == "" || e.Path == "" || e.Min > e.Max {
			t.Fatalf("malformed entry %+v", e)
		}
	}
}
