// Fixture for stencilsafety: a local Mesh with adjacency fields, a
// stencilRegistry covering two functions, and two rogue stencils that
// walk adjacency without being classified.
package fixture

type Mesh struct {
	CellEdge [][]int
	EdgeCell [][2]int
	TrskOff  []int
	Area     []float64
}

var stencilRegistry = map[string]string{
	"engine.registered": "split:flux",
	"freeRegistered":    "serial-diagnostic",
}

type engine struct{ m *Mesh }

func (e *engine) registered(out []float64) {
	for c := range e.m.CellEdge {
		out[c] = float64(len(e.m.CellEdge[c]))
	}
}

func (e *engine) rogue(out []float64) {
	for c := range e.m.CellEdge { // want `not registered in stencilRegistry`
		out[c] = 0
	}
}

func freeRegistered(m *Mesh) int {
	return len(m.EdgeCell)
}

func freeRogue(m *Mesh) int {
	return len(m.TrskOff) // want `not registered in stencilRegistry`
}

// geomOnly reads only per-entity geometry: halo-safe, never flagged.
func geomOnly(m *Mesh) float64 {
	return m.Area[0]
}
