// Fixture for stencilsafety: a local Mesh with adjacency fields, a
// stencilRegistry covering two functions, and two rogue stencils that
// walk adjacency without being classified.
package fixture

type Mesh struct {
	CellEdge [][]int
	EdgeCell [][2]int
	TrskOff  []int
	Area     []float64
}

var stencilRegistry = map[string]string{
	"engine.registered": "split:flux",
	"freeRegistered":    "serial-diagnostic",
	"handleRegistered":  "split:tend — owned-cell list drives the loop",
}

type engine struct{ m *Mesh }

func (e *engine) registered(out []float64) {
	for c := range e.m.CellEdge {
		out[c] = float64(len(e.m.CellEdge[c]))
	}
}

func (e *engine) rogue(out []float64) {
	for c := range e.m.CellEdge { // want `not registered in stencilRegistry`
		out[c] = 0
	}
}

func freeRegistered(m *Mesh) int {
	return len(m.EdgeCell)
}

func freeRogue(m *Mesh) int {
	return len(m.TrskOff) // want `not registered in stencilRegistry`
}

// geomOnly reads only per-entity geometry: halo-safe, never flagged.
func geomOnly(m *Mesh) float64 {
	return m.Area[0]
}

// Decomposition mirrors the run-time decomposition handle: its index
// lists carry halo structure one indirection away from the mesh.
type Decomposition struct {
	Owned  [][]int32
	Halo   [][]int32
	Peers  []map[int32][]int32
	NParts int
}

type IndexSet struct {
	Send [][]int32
	Recv [][]int32
}

func handleRegistered(d *Decomposition, p int) int {
	return len(d.Owned[p])
}

func handleRogue(d *Decomposition, p int) int {
	return len(d.Halo[p]) // want `not registered in stencilRegistry`
}

func setRogue(s *IndexSet) int {
	n := 0
	for _, ids := range s.Recv { // want `not registered in stencilRegistry`
		n += len(ids)
	}
	return n
}

// partsOnly reads scalar decomposition metadata, not index structure.
func partsOnly(d *Decomposition) int {
	return d.NParts
}
