// Fixture for precisioncheck: a miniature mixed-precision kernel with
// one violation per rule and the sanctioned idioms that must stay quiet.
// A structural twin of precision.Real is declared locally so the fixture
// type-checks standalone; the analyzer recognizes the constraint by
// shape, not by import path.
package fixture

type Real interface{ ~float32 | ~float64 }

type state struct {
	Phi  []float64 // FP64-pinned: geopotential
	pres []float64 // FP64-pinned: pressure
	vel  []float64
}

func kernel[T Real](s *state, u []T) {
	// R1: arithmetic forced through fixed float64, converted straight
	// back to the working precision.
	x := T(float64(u[0]) * 2.0) // want `round-trips through float64`
	_ = x

	// R2: pinned fields demoted inside a conversion expression.
	y := float32(s.Phi[0]) // want `FP64-pinned field "Phi"`
	_ = y
	z := T(s.pres[0]) // want `FP64-pinned field "pres"`
	_ = z

	// R3: untyped float literal defaults to float64, then gets squeezed
	// into the working precision after the fact.
	c := 10.0
	w := T(c) // want `untyped float literal`
	_ = w

	// R4: inline storage rounding instead of precision.Round32.
	r := float64(float32(s.vel[0])) // want `precision.Round32`
	_ = r

	// Sanctioned: promotion to float64 alone (e.g. accumulating into a
	// pinned accumulator) never loses information.
	acc := float64(u[0])
	_ = acc

	// Sanctioned: demotion of a pinned-derived value through a named
	// float64 intermediate — the precision decision is visible at dphi's
	// declaration.
	dphi := s.Phi[1] - s.Phi[0]
	ok := T(dphi)
	_ = ok

	// Suppression: a well-formed //lint:ignore with a reason silences
	// the finding (and documents why it is safe).
	//lint:ignore precisioncheck wire format is declared float32, demotion is the contract
	wire := float32(s.Phi[2])
	_ = wire
}
