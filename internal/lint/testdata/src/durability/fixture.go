// Golden fixture for the durability analyzer: discarded and shadowed
// errors on //grist:durable paths, with the best-effort exemptions.
package fixture

import (
	"os"
	"path/filepath"
)

func sink(b []byte) {}

//grist:durable
func AtomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	n, _ := f.Write(data) // want `error result assigned to _ on durable path AtomicWrite`
	_ = n
	f.Sync() // want `error result of os\.File\.Sync is discarded on durable path AtomicWrite`
	if err := f.Close(); err != nil {
		os.Remove(tmp) // best-effort removal of an unpublished temp: ok
		return err
	}
	return os.Rename(tmp, path)
}

//grist:durable
func CommitManifest(path string) (err error) {
	if len(path) > 0 {
		data, err := os.ReadFile(path) // want `err shadows an outer err on durable path CommitManifest`
		if err == nil {
			sink(data)
		}
	}
	return err
}

//grist:durable
func ScopedCheck(f *os.File) error {
	if err := f.Sync(); err != nil { // if-init shadowing is the idiom: ok
		return err
	}
	return nil
}

//grist:durable
func DeferredCleanup(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close() // deferred cleanup is best-effort: ok
	buf := make([]byte, 8)
	if _, err := f.Read(buf); err != nil {
		return err
	}
	return nil
}

// ExportSnapshot is durable; flushDir inherits the obligation through
// the call.
//
//grist:durable
func ExportSnapshot(dir string) error {
	return flushDir(dir)
}

func flushDir(dir string) error {
	f, err := os.Create(filepath.Join(dir, "snapshot.bin"))
	if err != nil {
		return err
	}
	f.Sync() // want `error result of os\.File\.Sync is discarded on durable path flushDir`
	return f.Close()
}

// coldCleanup is not reachable from any durable root: not checked.
func coldCleanup(path string) {
	os.Rename(path, path+".bak")
}
