// Cross-package half of the hotpathalloc fixture: hot paths calling
// into the dep package are checked against its exported
// allocates-facts.
package fixture

import "example.com/fix/hotdep"

//grist:hotpath
func crossStep(xs []float64) {
	dep.Scale(xs, 0.5)       // allocation-free callee: ok
	buf := dep.Grow(len(xs)) // want `call to dep\.Grow in hot path crossStep allocates: make`
	_ = buf
}

//grist:hotpath
func crossStepTransitive(xs []float64) {
	buf := dep.GrowVia(len(xs)) // want `call to dep\.GrowVia in hot path crossStepTransitive allocates: calls Grow`
	_ = buf
}
