// Fixture for hotpathalloc: an annotated step kernel containing every
// forbidden construct, the sanctioned loop-driver and panic idioms, a
// same-package callee the check must propagate into, and an unannotated
// cold function that must stay unflagged.
package fixture

import "fmt"

type engine struct {
	buf []float64
}

// iterateParallel is the fixture's stand-in for the dycore loop drivers.
func (e *engine) iterateParallel(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

//grist:hotpath
func (e *engine) step(n int) {
	tmp := make([]float64, n) // want `make in hot path`
	_ = tmp
	x := new(float64) // want `new in hot path`
	_ = x
	e.buf = append(e.buf, 1) // want `append in hot path`
	s := []float64{1, 2}     // want `slice literal`
	_ = s
	m := map[int]int{1: 2} // want `map literal`
	_ = m
	p := &engine{} // want `composite literal`
	_ = p
	fmt.Println(n)   // want `fmt call`
	go e.helper(n)   // want `goroutine launch`
	bad := func() {} // want `closure created`
	bad()

	// Sanctioned: a closure handed directly to a loop driver is the
	// repo's iteration idiom — but its body still runs per entity and
	// is checked.
	e.iterateParallel(n, func(i int) {
		e.buf[i] += 1
		q := make([]float64, 1) // want `make in hot path`
		_ = q
	})

	// Sanctioned: panic arguments are a cold path.
	if n < 0 {
		panic(fmt.Sprintf("bad n %d", n))
	}

	e.helper(n) // propagates the check into helper
}

// helper is hot only because step calls it.
func (e *engine) helper(n int) {
	t := make([]float64, n) // want `make in hot path`
	_ = t
}

// cold is neither annotated nor reachable from an annotated function,
// so it may allocate freely.
func cold(n int) []float64 {
	return make([]float64, n)
}
