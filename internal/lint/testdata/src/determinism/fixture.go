// Golden fixture for the determinism analyzer. Roots are marked
// //grist:bitwise; everything they reach — same-package helpers and
// facts imported from the dep fixture — is held to the
// bitwise-reproducibility rules.
package fixture

import (
	"math/rand"
	"sort"
	"time"

	"example.com/fix/detdep"
	"example.com/fix/internal/detrand"
)

var global int

//grist:bitwise
func RepartitionDecision(weights map[string]float64) float64 {
	sum := 0.0
	for _, w := range weights { // want `map iteration order over weights escapes`
		sum += w
	}
	return sum
}

//grist:bitwise
func RepartitionSorted(weights map[string]float64) float64 {
	keys := make([]string, 0, len(weights))
	for k := range weights { // self-append collection: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += weights[k]
	}
	return sum
}

//grist:bitwise
func CommitEpoch(n int) int64 {
	t := time.Now().UnixNano() // want `wall-clock read time\.Now`
	return t + int64(n)
}

//grist:bitwise
func PickVictim(n int) int {
	return rand.Intn(n) // want `global math/rand draw rand\.Intn`
}

//grist:bitwise
func SeededPick(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return r.Intn(n)
}

//grist:bitwise
func GatherViaHelper(m map[int]int) int {
	return helperSum(m)
}

// helperSum has no directive, but is reachable from GatherViaHelper, so
// its body is checked too.
func helperSum(m map[int]int) int {
	s := 0
	for _, v := range m { // want `map iteration order over m escapes`
		s += v
	}
	return s
}

//grist:bitwise
func StampFromDep() int64 {
	return dep.StampEpoch() // want `call to dep\.StampEpoch in bitwise-critical StampFromDep is nondeterministic: wall-clock read`
}

//grist:bitwise
func StampFromDepTransitive() int64 {
	return dep.ViaHelper() // want `call to dep\.ViaHelper in bitwise-critical StampFromDepTransitive is nondeterministic: calls StampEpoch`
}

//grist:bitwise
func MixFromDep(x uint64) uint64 {
	return dep.MixPure(x) // deterministic dep callee: allowed
}

//grist:bitwise
func JitterFromDetrand() int64 {
	return detrand.Jitter() // whitelisted package: allowed
}

// Unreachable from any root: nondeterminism here is not reported.
func coldPath() int64 {
	return time.Now().UnixNano()
}

// localOnly writes loop-local state only; order cannot fork ranks.
//
//grist:bitwise
func LocalOnly(m map[string]int) int {
	for k := range m {
		kk := len(k)
		_ = kk
	}
	return len(m) + global
}
