// Golden fixture for the durability analyzer's vfs rules: the
// best-effort exemption for vfs.FS.Remove (dropping the error of
// removing an unpublished temp is deliberate cleanup, not a commit)
// and the sync-before-rename check (a Rename publishing a file created
// in the same function with no Sync in between is a torn commit).
package fixture

import (
	"example.com/fix/vfs"
)

// AtomicReplace is the correct protocol: create, write, sync, close,
// rename — every error checked, temp removal best-effort.
//
//grist:durable
func AtomicReplace(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.CreateTemp(".", path+".tmp-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()        // want `error result of vfs\.File\.Close is discarded on durable path AtomicReplace`
		fsys.Remove(tmp) // best-effort removal of an unpublished temp: ok
		return err
	}
	if err := f.Sync(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.Rename(tmp, path) // synced before rename: ok
}

// PublishUnsynced renames a freshly written temp into place without a
// Sync: the rename can hit the journal before the data blocks, and a
// crash then exposes a published name full of garbage.
//
//grist:durable
func PublishUnsynced(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.Create(path + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(path+".tmp", path) // want `vfs\.FS\.Rename on durable path PublishUnsynced with no Sync between create and rename`
}

// StaleSync syncs an earlier file, then creates and renames a second
// one: the rule keys on the latest create before the rename, so the
// stale Sync does not cover the second file.
//
//grist:durable
func StaleSync(fsys vfs.FS, a, b string, data []byte) error {
	f, err := fsys.Create(a)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	g, err := fsys.Create(b + ".tmp")
	if err != nil {
		return err
	}
	if _, err := g.Write(data); err != nil {
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	return fsys.Rename(b+".tmp", b) // want `vfs\.FS\.Rename on durable path StaleSync with no Sync between create and rename`
}

// CommitThrough carries the directive; publish inherits the durable
// obligation through the same-package call and its unsynced rename is
// reported there.
//
//grist:durable
func CommitThrough(fsys vfs.FS, path string, data []byte) error {
	return publish(fsys, path, data)
}

func publish(fsys vfs.FS, path string, data []byte) error {
	f, err := fsys.CreateTemp(".", "pub-")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmp, path) // want `vfs\.FS\.Rename on durable path publish with no Sync between create and rename`
}

// coldRename is unreachable from any durable root: not checked, and a
// rename of a file this function never created is out of the rule's
// scope anyway.
func coldRename(fsys vfs.FS, a, b string) {
	fsys.Rename(a, b)
}
