// Package vfs mirrors the repo's injectable filesystem seam just
// enough for the durability golden fixtures: the analyzer matches
// callees by their package.Type.Method label, so the tests need a
// package *named* vfs exporting FS and File with the durable-path
// method set. No //grist:durable roots live here; the package exists
// only to give the main fixture vfs-typed values to call through.
package vfs

// File is one open file on an FS. Methods are declared directly (not
// embedded from io) so the analyzer's callee labels read vfs.File.*,
// the same shape the real seam produces at its call sites.
type File interface {
	Write(p []byte) (n int, err error)
	Close() error
	Sync() error
	Name() string
}

// FS is the filesystem surface of the durable paths.
type FS interface {
	Create(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}
