// Fixture for stencilsafety's mandatory-registry rule: loaded under an
// import path ending in internal/dycore, where the absence of a
// stencilRegistry declaration is itself the finding.
package fixture // want `must declare stencilRegistry`

type Mesh struct{ CellEdge [][]int }

func use(m *Mesh) int { return len(m.CellEdge) }
