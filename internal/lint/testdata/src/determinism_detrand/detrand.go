// Package detrand impersonates internal/detrand (the fixture loads it
// under a synthetic path ending in internal/detrand): a whitelisted
// package whose nondeterminism facts must be suppressed at import.
package detrand

import "time"

// Jitter would export a nondeterminism fact, but the package path is on
// the analyzer's exemption list, so bitwise callers are not flagged.
func Jitter() int64 {
	return time.Now().UnixNano()
}
