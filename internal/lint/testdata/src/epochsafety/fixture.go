// Golden fixture for the epochsafety analyzer: stale generation uses
// after SwapLayout/SetPlan/Redistribute, rebind-as-fix, and Gen-less
// manifest literals.
package fixture

// Layout, DistPlan and IndexSet carry the retirable names the analyzer
// tracks; Exchanger and Store carry the retiring methods.
type Layout struct{ Peers []int }

type DistPlan struct{ Owner []int }

type IndexSet struct{ Idx []int }

type Decomp struct{ N int }

func (d *Decomp) Layout() Layout     { return Layout{Peers: make([]int, d.N)} }
func (d *Decomp) Plan() *DistPlan    { return &DistPlan{Owner: make([]int, d.N)} }
func (d *Decomp) Indices() *IndexSet { return &IndexSet{Idx: make([]int, d.N)} }

type Exchanger struct{ cur Layout }

func (ex *Exchanger) SwapLayout(l Layout) { ex.cur = l }

type Store struct{ plan *DistPlan }

func (s *Store) SetPlan(p *DistPlan)                             { s.plan = p }
func (s *Store) Redistribute(epoch, step int, p *DistPlan) error { s.plan = p; return nil }

func sendTo(peers []int) {}

// StaleAfterSwap keeps using the pre-swap layout.
func StaleAfterSwap(ex *Exchanger, oldD, newD *Decomp) {
	old := oldD.Layout()
	sendTo(old.Peers)
	ex.SwapLayout(newD.Layout())
	sendTo(old.Peers) // want `old was derived from a decomposition generation retired by SwapLayout`
}

// RebuiltAfterSwap rebinds from the new generation first: the fix.
func RebuiltAfterSwap(ex *Exchanger, oldD, newD *Decomp) {
	l := oldD.Layout()
	sendTo(l.Peers)
	ex.SwapLayout(newD.Layout())
	l = newD.Layout()
	sendTo(l.Peers) // rebound: ok
}

// NewBeforeRetire builds the next generation just before installing it —
// the canonical call shape; the argument's own variable is not retired.
func NewBeforeRetire(ex *Exchanger, d *Decomp) {
	nl := d.Layout()
	ex.SwapLayout(nl)
	sendTo(nl.Peers) // the new generation itself: ok
}

// StaleParamAfterSwap first touches the stale parameter after the swap.
func StaleParamAfterSwap(ex *Exchanger, cached Layout, d *Decomp) {
	ex.SwapLayout(d.Layout())
	sendTo(cached.Peers) // want `cached was derived from a decomposition generation retired by SwapLayout`
}

// StalePlanAfterRedistribute reads ownership from the superseded plan.
func StalePlanAfterRedistribute(s *Store, pl *DistPlan, d *Decomp) int {
	owner := pl.Owner[0]
	newPl := d.Plan()
	if err := s.Redistribute(3, 40, newPl); err != nil {
		return -1
	}
	return owner + pl.Owner[1] // want `pl was derived from a decomposition generation retired by Redistribute`
}

// StaleIndexAfterSetPlan keeps a cached index set across SetPlan.
func StaleIndexAfterSetPlan(s *Store, d *Decomp) int {
	idx := d.Indices()
	s.SetPlan(d.Plan())
	return idx.Idx[0] // want `idx was derived from a decomposition generation retired by SetPlan`
}

// DerefRebind writes through a pointer-to-pointer after the retiring
// call — reshape()'s exact shape; the deref assignment is a rebind, not
// a use.
func DerefRebind(s *Store, pl **DistPlan, d *Decomp) {
	newPl := d.Plan()
	s.SetPlan(newPl)
	*pl = newPl // rebind through deref: ok
}

// Manifest carries both a generation and an epoch stamp.
type Manifest struct {
	Gen   int
	Epoch int
	Rank  int
}

func BuildManifests(epoch, gen, rank int) []Manifest {
	good := Manifest{Gen: gen, Epoch: epoch, Rank: rank}
	positional := Manifest{gen, epoch, rank}
	bad := Manifest{Epoch: epoch, Rank: rank} // want `manifest literal sets Epoch but omits Gen`
	return []Manifest{good, positional, bad}
}
