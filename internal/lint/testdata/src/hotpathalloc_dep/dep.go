// Package dep is an auxiliary fixture for hotpathalloc's cross-package
// fact propagation: no hot paths of its own, but every function gets an
// allocates-summary exported as a fact.
package dep

// Grow allocates directly.
func Grow(n int) []float64 {
	return make([]float64, n)
}

// GrowVia allocates only transitively, through a same-package call —
// the fixpoint must export a fact for it too.
func GrowVia(n int) []float64 {
	return Grow(n + 1)
}

// Scale is allocation-free; hot paths may call it.
func Scale(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}
