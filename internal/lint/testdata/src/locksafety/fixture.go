// Golden fixture for the locksafety analyzer: blocking work under a
// held sync.Mutex/RWMutex, with the release-then-block fixes.
package fixture

import (
	"net/http"
	"sync"
	"time"
)

type Exchanger struct{}

func (e *Exchanger) WaitAll()               {}
func (e *Exchanger) Barrier()               {}
func (e *Exchanger) ISend(to int, b []byte) {}

type Registry struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
	ch    chan int
	ex    *Exchanger
}

// CollectiveUnderLock holds the registry mutex across a barrier.
func (r *Registry) CollectiveUnderLock() {
	r.mu.Lock()
	r.ex.Barrier() // want `blocking collective r\.ex\.Barrier while r\.mu is held`
	r.mu.Unlock()
}

// CollectiveAfterUnlock releases first: the fix.
func (r *Registry) CollectiveAfterUnlock() {
	r.mu.Lock()
	n := len(r.items)
	r.mu.Unlock()
	if n > 0 {
		r.ex.Barrier()
	}
}

// SendUnderDeferredLock holds to function end via defer.
func (r *Registry) SendUnderDeferredLock(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v // want `channel send while r\.mu is held`
}

// NonBlockingSendUnderLock uses select-with-default: exempt.
func (r *Registry) NonBlockingSendUnderLock(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
	default:
	}
}

// ReceiveAndSleepUnderRLock blocks twice under a read lock.
func (r *Registry) ReceiveAndSleepUnderRLock() int {
	r.rw.RLock()
	v := <-r.ch             // want `channel receive while r\.rw is held`
	time.Sleep(time.Second) // want `time\.Sleep while r\.rw is held`
	r.rw.RUnlock()
	return v
}

// WaitGroupUnderLock waits on a WaitGroup while holding the mutex.
func (r *Registry) WaitGroupUnderLock(wg *sync.WaitGroup) {
	r.mu.Lock()
	wg.Wait() // want `sync wait wg\.Wait while r\.mu is held`
	r.mu.Unlock()
}

// CondWaitUnderLock is the condition-variable pattern: Cond.Wait
// REQUIRES the mutex held, so it is exempt.
func (r *Registry) CondWaitUnderLock(c *sync.Cond, ready *bool) {
	r.mu.Lock()
	for !*ready {
		c.Wait()
	}
	r.mu.Unlock()
}

// HandlerWriteUnderLock streams the response while holding the
// registry lock.
func (r *Registry) HandlerWriteUnderLock(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w.WriteHeader(http.StatusOK) // want `HTTP response WriteHeader while r\.mu is held`
	w.Write([]byte("ok"))        // want `HTTP response Write while r\.mu is held`
}

// HandlerCopyThenWrite copies under the lock and writes after: the fix.
func (r *Registry) HandlerCopyThenWrite(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	n := len(r.items)
	r.mu.Unlock()
	if n == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Write([]byte("ok"))
}

// GoroutineUnderLock launches work that blocks on its own goroutine:
// exempt.
func (r *Registry) GoroutineUnderLock(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.ch <- v
	}()
}

// BlockingSelectUnderLock has no default clause.
func (r *Registry) BlockingSelectUnderLock() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want `blocking select while r\.mu is held`
	case v := <-r.ch:
		return v
	case <-time.After(time.Second):
		return -1
	}
}
