// Fixture for sendownership: buffers touched after being handed to the
// transport, plus the three release paths (synchronization, whole-
// variable rebinding, untrackable call-result payloads).
package fixture

type Rank struct{}

func (r *Rank) ISend(to, tag int, data []byte)  {}
func (r *Rank) Send(to, tag int, data []byte)   {}
func (r *Rank) IRecv(from, tag int, dst []byte) {}
func (r *Rank) WaitAll()                        {}

// HaloExchanger mirrors the comm exchanger: Start/Finish bracket a
// round; SwapLayout rebinds the index sets to a new decomposition.
type HaloExchanger struct{}

func (h *HaloExchanger) Start()           {}
func (h *HaloExchanger) Finish()          {}
func (h *HaloExchanger) Exchange()        {}
func (h *HaloExchanger) SwapLayout(l int) {}

func writeAfterISend(r *Rank, buf []byte) {
	r.ISend(1, 2, buf)
	buf[0] = 9 // want `transport-owned after ISend`
}

func readAfterIRecv(r *Rank, dst []byte) {
	r.IRecv(1, 2, dst)
	_ = dst[0] // want `transport-owned after IRecv`
}

func reuseAfterSend(r *Rank, buf []byte, n int) {
	r.Send(1, 2, buf)
	for i := 0; i < n; i++ {
		buf[i] = 0 // want `transport-owned after Send`
	}
}

func insideLoop(r *Rank, bufs [][]byte) {
	for i := range bufs {
		r.ISend(i, 0, bufs[i])
		bufs[i][0] = 1 // want `transport-owned after ISend`
	}
}

func synchronized(r *Rank, buf []byte) {
	r.ISend(1, 2, buf)
	r.WaitAll()
	buf[0] = 9 // the round completed: ownership is back
}

func rebound(r *Rank, buf []byte) {
	r.ISend(1, 2, buf)
	buf = make([]byte, 8) // rebinding drops the alias to the sent memory
	buf[0] = 1
}

func callResult(r *Rank, pack func() []byte) {
	r.ISend(1, 2, pack()) // payload has no name; nothing to misuse
}

// guardClause is the collective/IO idiom: a non-root branch sends and
// returns, so the fall-through path never aliases an in-flight buffer.
func guardClause(r *Rank, root bool, buf []byte) []byte {
	if !root {
		r.Send(0, 1, buf)
		return nil
	}
	buf[0] = 1
	return buf
}

func swapMidRound(h *HaloExchanger, l int) {
	h.Start()
	h.SwapLayout(l) // want `mutates the halo layout of an in-flight round`
	h.Finish()
}

func swapBetweenRounds(h *HaloExchanger, l int) {
	h.Start()
	h.Finish()
	h.SwapLayout(l) // the round completed: repartitioning is safe here
	h.Start()
	h.Finish()
}

func swapAfterBlockingRound(h *HaloExchanger, l int) {
	h.Exchange()
	h.SwapLayout(l) // blocking rounds complete inline; never in flight
}

// swapOtherExchanger: a different exchanger's round is not ours.
func swapOtherExchanger(a, b *HaloExchanger, l int) {
	a.Start()
	b.SwapLayout(l)
	a.Finish()
}

func swapInLoop(h *HaloExchanger, layouts []int) {
	for _, l := range layouts {
		h.Start()
		h.SwapLayout(l) // want `mutates the halo layout of an in-flight round`
		h.Finish()
	}
}
