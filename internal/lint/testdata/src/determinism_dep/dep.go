// Package dep is an auxiliary fixture loaded before the determinism
// main fixture. It has no //grist:bitwise roots of its own, so nothing
// is reported here — but the analyzer still exports per-function
// nondeterminism facts, which the main fixture observes through its
// imports.
package dep

import "time"

// StampEpoch reads the wall clock; its exported fact marks it
// nondeterministic for cross-package callers.
func StampEpoch() int64 {
	return time.Now().UnixNano()
}

// MixPure is deterministic; callers may use it freely.
func MixPure(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	return x ^ x>>33
}

// ViaHelper is nondeterministic only transitively, through a
// same-package call — the fixpoint must export a fact for it too.
func ViaHelper() int64 {
	return StampEpoch() + 1
}
