// Package lint is the home of gristlint, the repo's custom static
// analysis suite. It provides a small, dependency-free analog of
// golang.org/x/tools/go/analysis — an Analyzer runs over one
// type-checked package at a time and reports Diagnostics — plus the
// offline package loader (load.go) and the //lint:ignore suppression
// machinery (ignore.go).
//
// The API deliberately mirrors go/analysis (Analyzer, Pass, Diagnostic,
// Pass.Reportf) so the four domain analyzers can be ported onto the real
// framework, and driven through `go vet -vettool`, the day
// golang.org/x/tools becomes available to this build. Until then
// cmd/gristlint is a standalone multichecker over this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name findings are reported and
// suppressed under, a doc string shown by `gristlint -help`, and the Run
// function applied to every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax trees, the
// type information, the Report sink, and the cross-package fact store.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factSet
}

// factSet carries analyzer-exported object facts across the packages of
// one Run. Facts are keyed by (analyzer, types.Object); because every
// package comes from one Loader, an imported function's types.Object is
// pointer-identical to the one its defining package exported under, so
// no serialization or renaming is needed.
type factSet struct {
	m map[factKey]any
}

type factKey struct {
	analyzer string
	obj      types.Object
}

// ExportObjectFact records a fact about obj under the running analyzer's
// name. Facts survive for the rest of the Run, so packages analyzed
// later (the importers — Run visits packages in dependency order) can
// read their callees' summaries with ImportObjectFact. Re-exporting
// overwrites.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	if p.facts == nil || obj == nil {
		return
	}
	p.facts.m[factKey{p.Analyzer.Name, obj}] = fact
}

// ImportObjectFact returns the fact the running analyzer exported for
// obj while analyzing an earlier package (or this one), and whether one
// exists. Objects from packages outside the Run — the stdlib, module
// packages not loaded this invocation — have no facts; callers treat
// them as unknown, exactly like the package-local propagation did at
// package boundaries before facts existed.
func (p *Pass) ImportObjectFact(obj types.Object) (any, bool) {
	if p.facts == nil || obj == nil {
		return nil, false
	}
	f, ok := p.facts.m[factKey{p.Analyzer.Name, obj}]
	return f, ok
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics, sorted by position. Findings suppressed by a well-formed
// //lint:ignore directive (see ignore.go) are dropped; malformed
// directives are themselves reported under the analyzer name "lint".
// All packages must come from one Loader (they share its FileSet).
//
// Packages are analyzed in import dependency order (imports before
// importers), so an analyzer that exports object facts for a package's
// functions can rely on its module-local callees' facts being present —
// cross-package propagation instead of the old package-local horizon.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	facts := &factSet{m: make(map[factKey]any)}
	var all []Diagnostic
	for _, pkg := range dependencyOrder(pkgs) {
		ig := collectIgnores(pkg.Fset, pkg.Files)
		for _, bad := range ig.malformed {
			all = append(all, bad)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				facts:     facts,
				report: func(d Diagnostic) {
					if d.Analyzer == "" {
						d.Analyzer = a.Name
					}
					if ig.suppresses(pkg.Fset, d) {
						return
					}
					all = append(all, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(all, pkgs[0].Fset)
	return all, nil
}

// sortDiagnostics orders diagnostics by (file, line, message).
func sortDiagnostics(all []Diagnostic, fset *token.FileSet) {
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := all[i].Position(fset), all[j].Position(fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Message < all[j].Message
	})
}

// dependencyOrder topologically sorts the packages so imports precede
// importers (ties broken by input order). Only dependencies that are
// themselves in the slice matter; edges to packages outside it (the
// stdlib, unloaded module packages) are ignored.
func dependencyOrder(pkgs []*Package) []*Package {
	byTypes := make(map[*types.Package]*Package, len(pkgs))
	for _, p := range pkgs {
		byTypes[p.Types] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // done, or a cycle (impossible in valid Go) — skip
		}
		state[p] = 1
		for _, imp := range p.Types.Imports() {
			if dep, ok := byTypes[imp]; ok {
				visit(dep)
			}
		}
		state[p] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}
