// Package lint is the home of gristlint, the repo's custom static
// analysis suite. It provides a small, dependency-free analog of
// golang.org/x/tools/go/analysis — an Analyzer runs over one
// type-checked package at a time and reports Diagnostics — plus the
// offline package loader (load.go) and the //lint:ignore suppression
// machinery (ignore.go).
//
// The API deliberately mirrors go/analysis (Analyzer, Pass, Diagnostic,
// Pass.Reportf) so the four domain analyzers can be ported onto the real
// framework, and driven through `go vet -vettool`, the day
// golang.org/x/tools becomes available to this build. Until then
// cmd/gristlint is a standalone multichecker over this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check: a name findings are reported and
// suppressed under, a doc string shown by `gristlint -help`, and the Run
// function applied to every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one package: the syntax trees, the
// type information, and the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Path      string // import path of the package under analysis
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Report emits a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.report(d)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Position resolves the diagnostic's file position.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics, sorted by position. Findings suppressed by a well-formed
// //lint:ignore directive (see ignore.go) are dropped; malformed
// directives are themselves reported under the analyzer name "lint".
// All packages must come from one Loader (they share its FileSet).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		ig := collectIgnores(pkg.Fset, pkg.Files)
		for _, bad := range ig.malformed {
			all = append(all, bad)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Path:      pkg.Path,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				report: func(d Diagnostic) {
					if d.Analyzer == "" {
						d.Analyzer = a.Name
					}
					if ig.suppresses(pkg.Fset, d) {
						return
					}
					all = append(all, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		pi, pj := all[i].Position(pkgs[0].Fset), all[j].Position(pkgs[0].Fset)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return all[i].Message < all[j].Message
	})
	return all, nil
}
