// Package analysistest runs a lint analyzer over a testdata fixture and
// compares its diagnostics against the fixture's expectation comments,
// in the spirit of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are written on the line the diagnostic is reported at:
//
//	tmp := make([]float64, n) // want `make in hot path`
//
// Each backquoted string after "want" is a regular expression that must
// match the message of exactly one diagnostic on that line. The test
// fails on any unexpected diagnostic and on any unmatched expectation —
// so a golden fixture also fails loudly if its analyzer is disabled.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"gristgo/internal/lint"
)

// backquoted extracts the expectation patterns from a want comment.
var backquoted = regexp.MustCompile("`([^`]+)`")

// Dep names an auxiliary fixture package loaded (and analyzed) before
// the package under test, so the fixture can exercise cross-package
// fact propagation: the main fixture imports a dep by its synthetic
// Path and the analyzer sees the dep's exported function summaries.
// Want comments in dep fixtures are honored too.
type Dep struct {
	Dir  string
	Path string
}

// Run loads dir as a single package under the synthetic import path
// asPath (fixtures live in testdata, invisible to the go tool, so the
// path is free to impersonate exempt or mandatory package paths) and
// requires a's diagnostics to match the fixture's want comments exactly.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	RunWithDeps(t, a, dir, asPath)
}

// RunWithDeps is Run with auxiliary fixture packages loaded first (in
// the given order) from the same loader, analyzed in the same lint.Run,
// so facts exported while analyzing a dep are visible when the main
// fixture is analyzed.
func RunWithDeps(t *testing.T, a *lint.Analyzer, dir, asPath string, deps ...Dep) {
	t.Helper()
	diags, pkgs := loadAll(t, a, dir, asPath, deps)
	wants := make(map[string][]*regexp.Regexp)
	for _, pkg := range pkgs {
		for k, v := range collectWants(t, pkg) {
			wants[k] = append(wants[k], v...)
		}
	}
	fset := pkgs[0].Fset
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := posKey(pos)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
			}
		}
	}
}

// RunExpectNone asserts the analyzer is silent on the fixture,
// disregarding its want comments. Used for exemption checks: the same
// sources load a second time under an exempt import path and every
// finding must disappear.
func RunExpectNone(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	diags, pkg := load(t, a, dir, asPath)
	for _, d := range diags {
		if d.Analyzer != a.Name {
			continue // e.g. "lint" malformed-ignore findings
		}
		t.Errorf("%s: expected no %s diagnostics under %s, got: %s",
			pkg.Fset.Position(d.Pos), a.Name, asPath, d.Message)
	}
}

func load(t *testing.T, a *lint.Analyzer, dir, asPath string) ([]lint.Diagnostic, *lint.Package) {
	t.Helper()
	diags, pkgs := loadAll(t, a, dir, asPath, nil)
	return diags, pkgs[len(pkgs)-1]
}

// loadAll loads the dep fixtures then the main fixture from one loader
// and analyzes them together. The returned slice lists deps first, the
// package under test last.
func loadAll(t *testing.T, a *lint.Analyzer, dir, asPath string, deps []Dep) ([]lint.Diagnostic, []*lint.Package) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	var pkgs []*lint.Package
	for _, dep := range deps {
		pkg, err := loader.LoadDir(dep.Dir, dep.Path)
		if err != nil {
			t.Fatalf("LoadDir(%s as %s): %v", dep.Dir, dep.Path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s as %s): %v", dir, asPath, err)
	}
	pkgs = append(pkgs, pkg)
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return diags, pkgs
}

// collectWants indexes the fixture's expectation regexps by file:line.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") && body != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := backquoted.FindAllStringSubmatch(strings.TrimPrefix(body, "want"), -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a backquoted pattern", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					key := posKey(pos)
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
