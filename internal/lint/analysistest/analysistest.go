// Package analysistest runs a lint analyzer over a testdata fixture and
// compares its diagnostics against the fixture's expectation comments,
// in the spirit of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are written on the line the diagnostic is reported at:
//
//	tmp := make([]float64, n) // want `make in hot path`
//
// Each backquoted string after "want" is a regular expression that must
// match the message of exactly one diagnostic on that line. The test
// fails on any unexpected diagnostic and on any unmatched expectation —
// so a golden fixture also fails loudly if its analyzer is disabled.
package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"gristgo/internal/lint"
)

// backquoted extracts the expectation patterns from a want comment.
var backquoted = regexp.MustCompile("`([^`]+)`")

// Run loads dir as a single package under the synthetic import path
// asPath (fixtures live in testdata, invisible to the go tool, so the
// path is free to impersonate exempt or mandatory package paths) and
// requires a's diagnostics to match the fixture's want comments exactly.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	diags, pkg := load(t, a, dir, asPath)
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := posKey(pos)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(d.Message) {
				wants[key][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s]: %s", pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w)
			}
		}
	}
}

// RunExpectNone asserts the analyzer is silent on the fixture,
// disregarding its want comments. Used for exemption checks: the same
// sources load a second time under an exempt import path and every
// finding must disappear.
func RunExpectNone(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	diags, pkg := load(t, a, dir, asPath)
	for _, d := range diags {
		if d.Analyzer != a.Name {
			continue // e.g. "lint" malformed-ignore findings
		}
		t.Errorf("%s: expected no %s diagnostics under %s, got: %s",
			pkg.Fset.Position(d.Pos), a.Name, asPath, d.Message)
	}
}

func load(t *testing.T, a *lint.Analyzer, dir, asPath string) ([]lint.Diagnostic, *lint.Package) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader(%s): %v", dir, err)
	}
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s as %s): %v", dir, asPath, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("lint.Run: %v", err)
	}
	return diags, pkg
}

// collectWants indexes the fixture's expectation regexps by file:line.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") && body != "want" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := backquoted.FindAllStringSubmatch(strings.TrimPrefix(body, "want"), -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without a backquoted pattern", pos)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					key := posKey(pos)
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}
