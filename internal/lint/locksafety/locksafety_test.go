package locksafety_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/locksafety"
)

func TestLocksafety(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "locksafety")
	analysistest.Run(t, locksafety.Analyzer, dir, "example.com/fix/locksafety")
}
