// Package locksafety flags blocking work performed while a mutex is
// held. The serve and telemetry registries sit on the request path of
// every forecast query: a registry mutex held across a rank barrier, a
// channel handoff, or an HTTP response write couples lock hold time to
// the slowest rank or the slowest client, and under elastic resize that
// is how a stalled peer walks a deadline miss up into a daemon-wide
// stall. The fix is always the same — copy what you need under the
// lock, release, then block.
//
// The analysis is function-local and block-scoped, in the family of
// sendownership: a call to mu.Lock()/mu.RLock() on a sync.Mutex or
// sync.RWMutex opens a held window that closes at the matching
// mu.Unlock()/mu.RUnlock() (anywhere in a later statement) or, for
// defer mu.Unlock(), at the end of the block. Inside the window these
// are reported:
//
//   - channel sends and receives (select with a default clause is
//     exempt — that is the documented non-blocking pattern);
//   - calls to blocking collectives and waits by name: WaitAll*,
//     Barrier*, ISend, Recv, and sync Wait (WaitGroup/Cond);
//   - time.Sleep;
//   - http.ResponseWriter Write/WriteHeader — handler bodies must not
//     stream while holding a registry lock.
//
// Function literals and go statements inside the window are skipped:
// they run on their own goroutine (or later), not under this lock.
package locksafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "locksafety",
	Doc:  "forbid blocking calls (collectives, channel ops, sleeps, HTTP writes) while a sync.Mutex/RWMutex is held",
	Run:  run,
}

// blockingNames are method names treated as blocking regardless of
// receiver package: the comm collectives and waits.
var blockingNames = map[string]bool{
	"WaitAll":         true,
	"WaitAllDeadline": true,
	"WaitAllContext":  true,
	"Barrier":         true,
	"BarrierDeadline": true,
	"BarrierContext":  true,
	"ISend":           true,
	"Recv":            true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd, func(n ast.Node) bool {
				switch b := n.(type) {
				case *ast.BlockStmt:
					checkBlock(pass, b.List)
				case *ast.CaseClause:
					checkBlock(pass, b.Body)
				case *ast.CommClause:
					checkBlock(pass, b.Body)
				}
				return true
			})
		}
	}
	return nil
}

// lockCall matches expr as a Lock/RLock or Unlock/RUnlock call on a
// sync mutex and returns the rendered receiver and whether it acquires.
func lockCall(info *types.Info, call *ast.CallExpr) (recv string, acquire bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	tv, okT := info.Types[sel.X]
	if !okT || tv.Type == nil || !isSyncMutex(tv.Type) {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

func isSyncMutex(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// checkBlock scans one statement list for held windows.
func checkBlock(pass *lint.Pass, stmts []ast.Stmt) {
	info := pass.TypesInfo
	for i, st := range stmts {
		// Acquisitions in the straight-line part of this statement. A
		// following defer mu.Unlock() keeps the window open to block
		// end, which the scan below already assumes when no inline
		// unlock is found.
		var acquired []string
		straightLine(st, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if recv, acq, ok := lockCall(info, call); ok && acq {
				acquired = append(acquired, recv)
			}
		})
		for _, recv := range acquired {
			scanHeld(pass, stmts[i+1:], recv)
		}
	}
}

// scanHeld walks the statements following an acquisition of recv and
// reports blocking constructs until recv's unlock.
func scanHeld(pass *lint.Pass, rest []ast.Stmt, recv string) {
	info := pass.TypesInfo
	end := token.NoPos // position of the matching unlock, once found
	for _, st := range rest {
		// Find an unlock of recv anywhere in this statement (not
		// deferred — a deferred unlock keeps the window open).
		ast.Inspect(st, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.DeferStmt, *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if r, acq, ok := lockCall(info, x); ok && !acq && r == recv {
					if !end.IsValid() || x.Pos() < end {
						end = x.Pos()
					}
				}
			}
			return true
		})
		reportBlocking(pass, st, recv, end)
		if end.IsValid() {
			return
		}
	}
}

// reportBlocking flags blocking constructs in st that occur before
// limit (NoPos = no limit).
func reportBlocking(pass *lint.Pass, st ast.Stmt, recv string, limit token.Pos) {
	info := pass.TypesInfo
	before := func(p token.Pos) bool { return !limit.IsValid() || p < limit }
	report := func(p token.Pos, what string) {
		if before(p) {
			pass.Reportf(p, "%s while %s is held; copy under the lock, release, then block", what, recv)
		}
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false // runs on its own goroutine / later
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(x.Pos(), "blocking select")
			}
			// Clause bodies still run under the lock either way.
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						ast.Inspect(s, visit)
					}
				}
			}
			return false
		case *ast.SendStmt:
			report(x.Arrow, "channel send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				report(x.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if what := blockingCall(info, x); what != "" {
				report(x.Pos(), what)
			}
		}
		return true
	}
	ast.Inspect(st, visit)
}

// blockingCall classifies a call as blocking, returning a description
// or "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case pkgPath == "time" && name == "Sleep":
		return "time.Sleep"
	case blockingNames[name]:
		return "blocking collective " + types.ExprString(sel.X) + "." + name
	case pkgPath == "sync" && name == "Wait" && !recvIsCond(sig):
		// sync.Cond.Wait is exempt: its contract REQUIRES the mutex held
		// (Wait releases and reacquires it) — that is the condition
		// variable pattern, not a lock-ordering bug.
		return "sync wait " + types.ExprString(sel.X) + ".Wait"
	case (name == "Write" || name == "WriteHeader") && sig != nil && recvIsResponseWriter(sig):
		return "HTTP response " + name
	}
	return ""
}

// recvIsCond reports whether the method's receiver is sync.Cond.
func recvIsCond(sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "Cond" && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync"
}

// recvIsResponseWriter reports whether the method's receiver is
// net/http.ResponseWriter.
func recvIsResponseWriter(sig *types.Signature) bool {
	recv := sig.Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "net/http")
}

// straightLine visits st without descending into nested blocks or
// function literals.
func straightLine(st ast.Stmt, f func(ast.Node)) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}
