package lint

import (
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

const ignoreSrc = `package p

//lint:ignore foo pinned term feeds a declared-float32 wire format
var a int

//lint:ignore foo
var b int

var c int //lint:ignore foo,bar both checks audited against the overlap design

//lint:ignore * scratch file, excluded from the invariants
var d int
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// varPos returns the position of the i-th package-level var name.
func varPos(f *ast.File, i int) token.Pos {
	return f.Decls[i].(*ast.GenDecl).Specs[0].(*ast.ValueSpec).Names[0].Pos()
}

func TestIgnoreDirectives(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	ig := collectIgnores(fset, []*ast.File{f})

	if len(ig.malformed) != 1 {
		t.Fatalf("malformed directives: got %d, want 1", len(ig.malformed))
	}
	if ig.malformed[0].Analyzer != "lint" {
		t.Errorf("malformed directive reported under %q, want \"lint\"", ig.malformed[0].Analyzer)
	}

	cases := []struct {
		name     string
		declIdx  int
		analyzer string
		want     bool
	}{
		{"directive above covers next line", 0, "foo", true},
		{"directive names only foo", 0, "bar", false},
		{"missing reason suppresses nothing", 1, "foo", false},
		{"end-of-line list, first name", 2, "foo", true},
		{"end-of-line list, second name", 2, "bar", true},
		{"end-of-line list, other analyzer", 2, "baz", false},
		{"wildcard covers everything", 3, "anything", true},
	}
	for _, tc := range cases {
		d := Diagnostic{Pos: varPos(f, tc.declIdx), Analyzer: tc.analyzer}
		if got := ig.suppresses(fset, d); got != tc.want {
			t.Errorf("%s: suppresses=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	diags, err := Run(nil, []*Analyzer{{Name: "x", Run: func(*Pass) error { return nil }}})
	if err != nil || diags != nil {
		t.Fatalf("Run(nil pkgs) = %v, %v; want nil, nil", diags, err)
	}
}

// A directive covers its own line and the next — one line further down
// and the diagnostic must survive.
const wrongLineSrc = `package p

//lint:ignore foo an early directive must not leak downward
var gap int

var e int
`

func TestIgnoreWrongLine(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", wrongLineSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ig := collectIgnores(fset, []*ast.File{f})
	covered := Diagnostic{Pos: varPos(f, 0), Analyzer: "foo"} // var gap, next line
	if !ig.suppresses(fset, covered) {
		t.Errorf("directive must cover the next line (var gap)")
	}
	past := Diagnostic{Pos: varPos(f, 1), Analyzer: "foo"} // var e, two lines down
	if ig.suppresses(fset, past) {
		t.Errorf("directive two lines up must not suppress (var e)")
	}
}

func TestCountIgnores(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	counts := CountIgnores([]*Package{{Fset: fset, Files: []*ast.File{f}}})
	// ignoreSrc holds: foo (reasoned), foo (malformed: excluded),
	// foo,bar (both counted), * (wildcard bucket).
	want := map[string]int{"foo": 2, "bar": 1, "*": 1}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("CountIgnores[%q] = %d, want %d", k, counts[k], v)
		}
	}
	if len(counts) != len(want) {
		t.Errorf("CountIgnores = %v, want exactly %v", counts, want)
	}
}

func TestBaselineBudget(t *testing.T) {
	b := &Baseline{Ignores: map[string]int{"foo": 1, "bar": 2}}

	// Within budget: no violations, no notes.
	if v, n := b.Check(map[string]int{"foo": 1, "bar": 2}); len(v) != 0 || len(n) != 0 {
		t.Errorf("equal counts: violations=%v notes=%v, want none", v, n)
	}

	// Growth fails, naming the analyzer and both counts.
	v, _ := b.Check(map[string]int{"foo": 3, "bar": 2})
	if len(v) != 1 || !strings.Contains(v[0], `"foo"`) ||
		!strings.Contains(v[0], "3") || !strings.Contains(v[0], "baseline allows 1") {
		t.Errorf("budget growth: violations = %v", v)
	}

	// A suppression for an analyzer the baseline has never seen is also
	// growth (implicit budget zero).
	if v, _ := b.Check(map[string]int{"foo": 1, "bar": 2, "new": 1}); len(v) != 1 {
		t.Errorf("unbudgeted analyzer: violations = %v, want 1", v)
	}

	// Shrinking passes but asks for a ratchet-down.
	v, n := b.Check(map[string]int{"foo": 1})
	if len(v) != 0 || len(n) != 1 || !strings.Contains(n[0], `"bar"`) {
		t.Errorf("budget shrink: violations=%v notes=%v", v, n)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := WriteBaseline(path, map[string]int{"foo": 2}); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Ignores["foo"] != 2 {
		t.Errorf("round trip: got %v", b.Ignores)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Errorf("reading a missing baseline must fail")
	}
}

func TestEncodeSARIF(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	diags := []Diagnostic{
		{Pos: varPos(f, 0), Analyzer: "foo", Message: "finding one"},
		{Pos: varPos(f, 1), Analyzer: "lint", Message: "malformed directive"},
	}
	analyzers := []*Analyzer{{Name: "foo", Doc: "doc foo"}, {Name: "bar", Doc: "doc bar"}}
	raw, err := EncodeSARIF(diags, fset, "", analyzers)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(raw, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema: %q %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "gristlint" {
		t.Fatalf("runs/driver malformed: %s", raw)
	}
	// Rule table: every registered analyzer plus the framework's "lint"
	// pseudo-rule appearing in the findings.
	ids := make(map[string]bool)
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"foo", "bar", "lint"} {
		if !ids[want] {
			t.Errorf("rule table missing %q (have %v)", want, ids)
		}
	}
	rs := log.Runs[0].Results
	if len(rs) != 2 || rs[0].RuleID != "foo" || rs[0].Level != "error" {
		t.Fatalf("results malformed: %s", raw)
	}
	loc := rs[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "x.go" || loc.Region.StartLine == 0 {
		t.Errorf("location malformed: %+v", loc)
	}
}

func TestEncodeJSON(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	diags := []Diagnostic{{Pos: varPos(f, 0), Analyzer: "foo", Message: "m"}}
	raw, err := EncodeJSON(diags, fset, "")
	if err != nil {
		t.Fatal(err)
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].File != "x.go" || out[0].Analyzer != "foo" || out[0].Line == 0 {
		t.Errorf("EncodeJSON = %+v", out)
	}
}
