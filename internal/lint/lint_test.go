package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const ignoreSrc = `package p

//lint:ignore foo pinned term feeds a declared-float32 wire format
var a int

//lint:ignore foo
var b int

var c int //lint:ignore foo,bar both checks audited against the overlap design

//lint:ignore * scratch file, excluded from the invariants
var d int
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// varPos returns the position of the i-th package-level var name.
func varPos(f *ast.File, i int) token.Pos {
	return f.Decls[i].(*ast.GenDecl).Specs[0].(*ast.ValueSpec).Names[0].Pos()
}

func TestIgnoreDirectives(t *testing.T) {
	fset, f := parseIgnoreSrc(t)
	ig := collectIgnores(fset, []*ast.File{f})

	if len(ig.malformed) != 1 {
		t.Fatalf("malformed directives: got %d, want 1", len(ig.malformed))
	}
	if ig.malformed[0].Analyzer != "lint" {
		t.Errorf("malformed directive reported under %q, want \"lint\"", ig.malformed[0].Analyzer)
	}

	cases := []struct {
		name     string
		declIdx  int
		analyzer string
		want     bool
	}{
		{"directive above covers next line", 0, "foo", true},
		{"directive names only foo", 0, "bar", false},
		{"missing reason suppresses nothing", 1, "foo", false},
		{"end-of-line list, first name", 2, "foo", true},
		{"end-of-line list, second name", 2, "bar", true},
		{"end-of-line list, other analyzer", 2, "baz", false},
		{"wildcard covers everything", 3, "anything", true},
	}
	for _, tc := range cases {
		d := Diagnostic{Pos: varPos(f, tc.declIdx), Analyzer: tc.analyzer}
		if got := ig.suppresses(fset, d); got != tc.want {
			t.Errorf("%s: suppresses=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRunEmptyInput(t *testing.T) {
	diags, err := Run(nil, []*Analyzer{{Name: "x", Run: func(*Pass) error { return nil }}})
	if err != nil || diags != nil {
		t.Fatalf("Run(nil pkgs) = %v, %v; want nil, nil", diags, err)
	}
}
