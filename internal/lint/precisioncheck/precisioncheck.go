// Package precisioncheck enforces the mixed-precision discipline of
// §3.4: kernels parameterized by precision.Real must actually compute in
// the switchable working precision, and the FP64-pinned terms
// (geopotential, pressure-gradient/gravity diagnostics, the accumulated
// mass flux) must never be demoted. The ps/vor < 5% harness checks the
// outcome dynamically; this analyzer checks the construction statically.
//
// Rules:
//
//	R1 round-trip promotion: a conversion T(...) to a Real type
//	   parameter whose argument contains float64(x)/float32(x) of a
//	   value of a Real type parameter. The enclosed computation silently
//	   runs at a fixed precision, defeating the switchable kind.
//	R2 pinned demotion: a conversion to float32 or to a Real type
//	   parameter whose argument mentions an FP64-pinned field (the
//	   allowlist below). Deriving an insensitive value from a pinned
//	   term must go through a named float64 intermediate, so the
//	   demotion is visible at a declaration rather than buried in an
//	   expression.
//	R3 literal-typed intermediate: a short variable declaration from an
//	   untyped float constant (which defaults to float64) whose variable
//	   is later converted to a Real type parameter. Write uStar := T(10)
//	   instead of uStar := 10.0 ... T(uStar).
//	R4 fixed round-trip: float64(float32(x)) outside internal/precision.
//	   That idiom is storage rounding (§3.4.3) and must go through
//	   precision.Round32 so its semantics stay in one place.
//
// internal/precision (the rounding machinery itself) and internal/infer
// (the quantizing inference engine) are exempt.
package precisioncheck

import (
	"go/ast"
	"go/types"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "precisioncheck",
	Doc:  "enforce the §3.4 mixed-precision discipline around precision.Real kernels and FP64-pinned fields",
	Run:  run,
}

// exemptSuffixes are the packages allowed to convert freely between
// fixed and switchable precisions.
var exemptSuffixes = []string{"internal/precision", "internal/infer"}

// pinnedNames lists the FP64-pinned fields of §3.4.2: geopotential,
// pressure/Exner/mid-pressure diagnostics feeding the pressure-gradient
// and gravity terms, the double-precision tendency accumulators, and the
// accumulated tracer mass flux.
var pinnedNames = map[string]bool{
	"Phi":           true,
	"pres":          true,
	"exner":         true,
	"pmid":          true,
	"dMass":         true,
	"dTheta":        true,
	"dU":            true,
	"massFluxAcc":   true,
	"MassFluxAccum": true,
}

func run(pass *lint.Pass) error {
	for _, suf := range exemptSuffixes {
		if strings.HasSuffix(pass.Path, suf) {
			return nil
		}
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		// R3 bookkeeping: objects declared from untyped float constants.
		literalTyped := literalFloatDecls(f, info)

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			target, isConv := conversionTarget(info, call)
			if !isConv {
				return true
			}
			arg := call.Args[0]

			toReal := isRealTypeParam(target)
			toF32 := isBasicFloat(target, types.Float32)
			toF64 := isBasicFloat(target, types.Float64)

			if toReal {
				if inner := findFixedConversionOfReal(info, arg); inner != nil {
					pass.Reportf(call.Pos(),
						"working-precision value round-trips through %s inside a conversion back to its Real type parameter; the enclosed arithmetic runs at fixed precision regardless of the instantiation (§3.4)",
						types.ExprString(inner.Fun))
				}
			}
			if toReal || toF32 {
				if name := findPinnedMention(arg); name != "" {
					pass.Reportf(call.Pos(),
						"FP64-pinned field %q flows into a %s conversion; pinned terms (pressure gradient, gravity, accumulated mass flux) must stay float64 — derive insensitive values through a named float64 intermediate (§3.4.2)",
						name, convName(target))
				}
			}
			if toReal {
				if id, ok := arg.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && literalTyped[obj] {
						pass.Reportf(call.Pos(),
							"%s was declared from an untyped float literal (defaulting to float64) and is now converted to the Real type parameter; declare it in working precision instead (e.g. %s := %s(10.0))",
							id.Name, id.Name, convName(target))
					}
				}
			}
			if toF64 {
				if inner, ok := unparen(arg).(*ast.CallExpr); ok && len(inner.Args) == 1 {
					if t, isC := conversionTarget(info, inner); isC && isBasicFloat(t, types.Float32) {
						pass.Reportf(call.Pos(),
							"float64(float32(...)) models storage rounding; use precision.Round32 so the §3.4.3 rounding semantics stay centralized")
					}
				}
			}
			return true
		})
	}
	return nil
}

// conversionTarget reports whether call is a type conversion and returns
// the target type.
func conversionTarget(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isBasicFloat(t types.Type, kind types.BasicKind) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}

// isRealTypeParam reports whether t is a type parameter whose constraint
// is a precision.Real-shaped interface: a pure float32/float64 union
// with no methods. The check is structural, so locally declared
// equivalents of precision.Real are recognized too.
func isRealTypeParam(t types.Type) bool {
	tp, ok := types.Unalias(t).(*types.TypeParam)
	if !ok {
		return false
	}
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() != 0 || iface.NumEmbeddeds() == 0 {
		return false
	}
	return floatOnlyTerms(iface)
}

// floatOnlyTerms reports whether every term of the interface's type set
// is (an approximation of) float32 or float64.
func floatOnlyTerms(iface *types.Interface) bool {
	sawTerm := false
	var check func(t types.Type) bool
	check = func(t types.Type) bool {
		switch u := types.Unalias(t).(type) {
		case *types.Union:
			for i := 0; i < u.Len(); i++ {
				if !check(u.Term(i).Type()) {
					return false
				}
			}
			return true
		default:
			if sub, ok := t.Underlying().(*types.Interface); ok {
				for i := 0; i < sub.NumEmbeddeds(); i++ {
					if !check(sub.EmbeddedType(i)) {
						return false
					}
				}
				return true
			}
			b, ok := t.Underlying().(*types.Basic)
			if !ok || (b.Kind() != types.Float32 && b.Kind() != types.Float64) {
				return false
			}
			sawTerm = true
			return true
		}
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		if !check(iface.EmbeddedType(i)) {
			return false
		}
	}
	return sawTerm
}

// findFixedConversionOfReal returns a float64(...)/float32(...) call in
// the subtree whose argument's type is a Real type parameter, or nil.
func findFixedConversionOfReal(info *types.Info, root ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		t, isConv := conversionTarget(info, call)
		if !isConv || (!isBasicFloat(t, types.Float64) && !isBasicFloat(t, types.Float32)) {
			return true
		}
		if at, ok := info.Types[call.Args[0]]; ok && isRealTypeParam(at.Type) {
			found = call
			return false
		}
		return true
	})
	return found
}

// findPinnedMention returns the name of an FP64-pinned field referenced
// (as a selector) anywhere in the subtree, or "".
func findPinnedMention(root ast.Expr) string {
	name := ""
	ast.Inspect(root, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && pinnedNames[sel.Sel.Name] {
			name = sel.Sel.Name
			return false
		}
		return true
	})
	return name
}

// convName renders the conversion target for messages.
func convName(t types.Type) string {
	if tp, ok := types.Unalias(t).(*types.TypeParam); ok {
		return tp.Obj().Name()
	}
	return t.String()
}

// literalFloatDecls collects objects introduced by `x := <untyped float
// constant>` (or var x = ...), whose static type defaulted to float64.
func literalFloatDecls(f *ast.File, info *types.Info) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			return
		}
		tv, ok := info.Types[rhs]
		if !ok || tv.Value == nil {
			return
		}
		// The declaration is suspect only if the constant defaulted to
		// float64: that is the silent promotion. (go/types records the
		// post-default type for untyped constants in value positions.)
		if isBasicFloat(obj.Type(), types.Float64) {
			out[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) && st.Type == nil {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return out
}
