package precisioncheck_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/precisioncheck"
)

func TestPrecisioncheck(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "precisioncheck")
	analysistest.Run(t, precisioncheck.Analyzer, dir, "example.com/fix/precisioncheck")
}

// TestExemptPackage loads the same fixture under an exempt import path:
// the rounding machinery itself is allowed to convert freely.
func TestExemptPackage(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "precisioncheck")
	analysistest.RunExpectNone(t, precisioncheck.Analyzer, dir, "example.com/internal/precision")
}
