package lint

// Machine-readable output. The text format on stdout is for humans at a
// terminal; CI wants two other shapes: a flat JSON array a script can
// jq over, and SARIF 2.1.0, the interchange format code-hosting UIs
// (GitHub code scanning among them) ingest to annotate PR diffs with
// findings. Both are encoded from the same []Diagnostic the text path
// prints, so the three formats can never disagree about what was found.

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
)

// JSONDiagnostic is one finding in the -format json output.
type JSONDiagnostic struct {
	File     string `json:"file"` // module-root-relative when root is given
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// EncodeJSON renders diagnostics as a JSON array. root, when non-empty,
// relativizes file paths (the module root, so output is stable across
// checkouts).
func EncodeJSON(diags []Diagnostic, fset *token.FileSet, root string) ([]byte, error) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := d.Position(fset)
		out = append(out, JSONDiagnostic{
			File:     relPath(root, pos.Filename),
			Line:     pos.Line,
			Column:   pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// SARIF 2.1.0 skeleton — only the fields the spec marks required plus
// the location detail PR annotation needs. Kept as plain structs so the
// output is schema-stable and testable without a SARIF dependency.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// EncodeSARIF renders diagnostics as a SARIF 2.1.0 log with one run.
// analyzers populates the rule table (every registered analyzer appears
// even with zero findings, so the rule metadata is stable); root
// relativizes file URIs against the module root, the form code-hosting
// annotation expects.
func EncodeSARIF(diags []Diagnostic, fset *token.FileSet, root string, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	seen := make(map[string]bool)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	// The framework itself reports malformed //lint:ignore directives
	// under "lint"; any analyzer name appearing in the findings but not
	// in the registry still needs a rule entry for the log to validate.
	for _, d := range diags {
		if !seen[d.Analyzer] {
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: "gristlint framework diagnostics"}})
			seen[d.Analyzer] = true
		}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := d.Position(fset)
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(relPath(root, pos.Filename))},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "gristlint", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// relPath relativizes path against root when possible; otherwise the
// path is returned unchanged.
func relPath(root, path string) string {
	if root == "" {
		return path
	}
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
