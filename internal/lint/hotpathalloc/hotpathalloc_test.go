package hotpathalloc_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	base := filepath.Join("..", "testdata", "src")
	analysistest.RunWithDeps(t, hotpathalloc.Analyzer,
		filepath.Join(base, "hotpathalloc"), "example.com/fix/hotpathalloc",
		analysistest.Dep{Dir: filepath.Join(base, "hotpathalloc_dep"), Path: "example.com/fix/hotdep"},
	)
}
