package hotpathalloc_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "hotpathalloc")
	analysistest.Run(t, hotpathalloc.Analyzer, dir, "example.com/fix/hotpathalloc")
}
