// Package hotpathalloc enforces the allocation-free steady state of the
// model's hot paths by construction. A function annotated
//
//	//grist:hotpath
//
// in its doc comment — the dycore step kernels, the inference engine's
// execute path, the halo pack/unpack — must not contain heap-allocating
// constructs, and neither may any same-package function it statically
// calls: make/new, append, slice or map composite literals, &T{...},
// fmt.* calls, goroutine launches, and closure creation.
//
// Two sanctioned idioms are carved out:
//
//   - Closures handed directly to the engine's loop drivers
//     (iterateParallel and friends, below) are the repo's OpenMP-analog
//     iteration idiom; the closure header is one O(1) allocation per
//     kernel invocation while the closure BODY runs once per entity, so
//     bodies are still checked, creations are not.
//   - Anything inside the argument list of panic(...) is a cold path.
//
// Call-graph propagation is name-resolved. Same-package calls are
// followed directly; package boundaries are crossed through facts:
// analyzing a package exports a per-function "allocates" summary for
// every declaration, and — lint.Run analyzes packages in import
// dependency order — a hot path calling into another module package is
// checked against the callee's exported summary. Calls through
// function values (e.g. OwnedSets.Start) and into packages without
// facts (stdlib) are still not followed — those boundaries remain
// covered by the testing.AllocsPerRun guards.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid heap-allocating constructs in //grist:hotpath functions and their package-local callees",
	Run:  run,
}

// directive marks a hot-path function in its doc comment.
const directive = "//grist:hotpath"

// Fact is the per-function allocation summary exported for
// cross-package propagation: present means the function (transitively)
// contains an allocating construct, and Reason says which.
type Fact struct {
	Reason string
}

// loopDrivers are the sanctioned per-entity iteration helpers: a closure
// passed directly to one of these is not reported (its body still is).
var loopDrivers = map[string]bool{
	"iterate":             true,
	"iterateParallel":     true,
	"parallelFor":         true,
	"eachTendCell":        true,
	"eachFluxEdge":        true,
	"eachUEdge":           true,
	"eachCell":            true,
	"eachEdge":            true,
	"eachCommitCell":      true,
	"eachCommitCellOrAll": true,
}

func run(pass *lint.Pass) error {
	info := pass.TypesInfo

	// Index this package's function declarations by their object.
	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
			if isAnnotated(fd) {
				roots = append(roots, fd)
			}
		}
	}

	// Export an "allocates" fact for every declaration, hot or not:
	// later packages check their hot paths' calls into this one against
	// these summaries.
	exportAllocFacts(pass, decls)

	if len(roots) == 0 {
		return nil
	}

	// Worklist: every function reachable from an annotated root through
	// statically resolved same-package calls is hot.
	checked := make(map[*ast.FuncDecl]bool)
	work := append([]*ast.FuncDecl(nil), roots...)
	for len(work) > 0 {
		fd := work[0]
		work = work[1:]
		if checked[fd] {
			continue
		}
		checked[fd] = true
		callees := checkBody(pass, fd)
		for _, obj := range callees {
			if cd, ok := decls[obj]; ok && !checked[cd] {
				work = append(work, cd)
			}
		}
	}
	return nil
}

// exportAllocFacts computes the transitive allocates-summary of every
// function in the package — own allocating constructs, same-package
// callees (fixpoint), imported facts of cross-package callees — and
// exports a Fact for each function that allocates.
func exportAllocFacts(pass *lint.Pass, decls map[types.Object]*ast.FuncDecl) {
	type summary struct {
		first finding
		has   bool
		same  []types.Object
		cross []crossCall
	}
	sums := make(map[types.Object]*summary, len(decls))
	for obj, fd := range decls {
		s := &summary{}
		w := &walker{pass: pass, fn: fd.Name.Name, sink: func(pos token.Pos, msg string) {
			if !s.has {
				s.first, s.has = finding{pos: pos, msg: msg}, true
			}
		}}
		w.walk(fd.Body, false)
		s.same, s.cross = w.callees, w.cross
		sums[obj] = s
	}
	reason := make(map[types.Object]string)
	for obj, s := range sums {
		if s.has {
			pos := pass.Fset.Position(s.first.pos)
			reason[obj] = fmt.Sprintf("%s (%s:%d)", s.first.msg, shortFile(pos.Filename), pos.Line)
			continue
		}
		for _, c := range s.cross {
			if f, ok := importAllocFact(pass, c.fn); ok {
				reason[obj] = fmt.Sprintf("calls %s, which allocates: %s", calleeLabel(c.fn), f.Reason)
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, s := range sums {
			if _, done := reason[obj]; done {
				continue
			}
			for _, callee := range s.same {
				co := callee
				if fn, ok := co.(*types.Func); ok {
					co = fn.Origin()
				}
				if r, ok := reason[co]; ok {
					reason[obj] = fmt.Sprintf("calls %s, which allocates: %s", callee.Name(), r)
					changed = true
					break
				}
			}
		}
	}
	for obj, r := range reason {
		pass.ExportObjectFact(obj, Fact{Reason: r})
	}
}

// importAllocFact resolves a cross-package callee's exported Fact.
func importAllocFact(pass *lint.Pass, fn *types.Func) (Fact, bool) {
	v, ok := pass.ImportObjectFact(fn.Origin())
	if !ok {
		return Fact{}, false
	}
	f, ok := v.(Fact)
	return f, ok
}

func isAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// finding is one allocating construct, for summary mode.
type finding struct {
	pos token.Pos
	msg string
}

// crossCall is one statically resolved call into another package.
type crossCall struct {
	fn  *types.Func
	pos token.Pos
}

// walker carries the traversal state through one function body. In hot
// mode (checkBody) findings become diagnostics and cross-package calls
// are checked against imported facts; in summary mode (sink set by
// exportAllocFacts) findings feed the function's exported summary.
type walker struct {
	pass    *lint.Pass
	fn      string
	hot     bool
	sink    func(token.Pos, string)
	callees []types.Object
	cross   []crossCall
}

func (w *walker) report(pos token.Pos, format string, args ...any) {
	w.sink(pos, fmt.Sprintf(format, args...))
}

// checkBody reports allocating constructs in fd's body and returns the
// statically resolved callees to propagate into.
func checkBody(pass *lint.Pass, fd *ast.FuncDecl) []types.Object {
	w := &walker{pass: pass, fn: fd.Name.Name, hot: true, sink: func(pos token.Pos, msg string) {
		pass.Reportf(pos, "%s", msg)
	}}
	w.walk(fd.Body, false)
	return w.callees
}

// walk visits n; inPanic marks subtrees inside panic(...) arguments.
func (w *walker) walk(n ast.Node, inPanic bool) {
	if n == nil {
		return
	}
	info := w.pass.TypesInfo
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			if !inPanic {
				w.report(x.Pos(), "goroutine launch in hot path %s allocates; hoist concurrency into the loop drivers", w.fn)
			}
		case *ast.CallExpr:
			return w.visitCall(x, inPanic)
		case *ast.FuncLit:
			if !inPanic {
				w.report(x.Pos(), "closure created in hot path %s allocates per call; pass it to a loop driver or hoist it out of the steady state", w.fn)
			}
			// Body is traversed by the enclosing Inspect anyway.
		case *ast.CompositeLit:
			if inPanic {
				return true
			}
			if tv, ok := info.Types[x]; ok {
				switch types.Unalias(tv.Type).Underlying().(type) {
				case *types.Slice:
					w.report(x.Pos(), "slice literal in hot path %s heap-allocates; use a preallocated scratch buffer", w.fn)
				case *types.Map:
					w.report(x.Pos(), "map literal in hot path %s heap-allocates; use a preallocated structure", w.fn)
				}
			}
		case *ast.UnaryExpr:
			if !inPanic && x.Op.String() == "&" {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					w.report(x.Pos(), "&composite literal in hot path %s escapes to the heap; reuse a preallocated value", w.fn)
				}
			}
		}
		return true
	})
}

// visitCall classifies one call expression. Returns false when the
// children were handled manually.
func (w *walker) visitCall(call *ast.CallExpr, inPanic bool) bool {
	info := w.pass.TypesInfo
	name, obj := calleeName(info, call)

	switch {
	case obj == nil && name == "": // dynamic call through a value
		return true
	case isBuiltin(obj, "panic"):
		// Cold path: walk arguments with the exemption set.
		for _, a := range call.Args {
			w.walk(a, true)
		}
		return false
	case isBuiltin(obj, "make"):
		if !inPanic {
			w.report(call.Pos(), "make in hot path %s allocates per call; allocate at construction time", w.fn)
		}
	case isBuiltin(obj, "new"):
		if !inPanic {
			w.report(call.Pos(), "new in hot path %s allocates per call; allocate at construction time", w.fn)
		}
	case isBuiltin(obj, "append"):
		if !inPanic {
			w.report(call.Pos(), "append in hot path %s may grow its backing array; size buffers at construction time", w.fn)
		}
	case obj != nil && isFmtCall(obj):
		if !inPanic {
			w.report(call.Pos(), "fmt call in hot path %s allocates (boxing and buffers); restrict formatting to error paths", w.fn)
		}
	case loopDrivers[name]:
		// Sanctioned iteration scaffolding: do not flag direct closure
		// arguments and do not propagate into the driver, but do check
		// the closure bodies (they run once per entity).
		for _, a := range call.Args {
			if fl, ok := a.(*ast.FuncLit); ok {
				w.walk(fl.Body, inPanic)
			} else {
				w.walk(a, inPanic)
			}
		}
		w.walk(call.Fun, inPanic)
		return false
	case obj != nil:
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			break
		}
		if fn.Pkg() == w.pass.Pkg {
			w.callees = append(w.callees, obj)
			break
		}
		w.cross = append(w.cross, crossCall{fn: fn, pos: call.Pos()})
		if w.hot && !inPanic {
			if f, ok := importAllocFact(w.pass, fn); ok {
				w.report(call.Pos(), "call to %s in hot path %s allocates: %s", calleeLabel(fn), w.fn, f.Reason)
			}
		}
	}
	return true
}

// calleeLabel renders pkg.Func or pkg.Type.Method for messages.
func calleeLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// shortFile trims the path to its last two elements for messages.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}

// calleeName resolves the called function's name and object, seeing
// through selectors and generic instantiations.
func calleeName(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr: // explicit generic instantiation f[T](...)
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name, info.Uses[f]
	case *ast.SelectorExpr:
		return f.Sel.Name, info.Uses[f.Sel]
	}
	return "", nil
}

func isBuiltin(obj types.Object, name string) bool {
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == name
}

func isFmtCall(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}
