package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package of the module under
// analysis: syntax with comments, the types.Package, and full expression
// type information.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages without export data or network
// access: module-local import paths resolve into the module tree, and
// everything else resolves into GOROOT/src and is type-checked from
// source (the same strategy as go/importer's "source" compiler). The
// container image has no module cache, so this is the only loading
// strategy that works offline — and the module has no third-party
// dependencies, so it is also complete.
//
// Test files (_test.go) are not loaded: the invariants gristlint encodes
// govern the model's steady-state code, and the ps/vor and AllocsPerRun
// harnesses exercise their dynamic halves from the test side.
type Loader struct {
	fset    *token.FileSet
	ctx     build.Context
	modRoot string
	modPath string

	typed   map[string]*types.Package // every import path, incl. stdlib
	pkgs    map[string]*Package       // packages loaded with syntax+info
	loading map[string]bool           // cycle detection
	extra   map[string]string         // synthetic import path -> directory (testdata fixtures)
}

// NewLoader creates a loader for the module whose go.mod is found in dir
// or one of its parents.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Pure-Go loading: cgo-constrained files drop out and the stdlib's
	// non-cgo fallbacks are selected, which type-check from source.
	ctx.CgoEnabled = false
	return &Loader{
		fset:    token.NewFileSet(),
		ctx:     ctx,
		modRoot: root,
		modPath: modPath,
		typed:   make(map[string]*types.Package),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		extra:   make(map[string]string),
	}, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModuleRoot returns the directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// modulePath extracts the module path from the first `module` directive.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves patterns to module packages and type-checks them.
// Supported patterns: "./..." (every package under the module root), a
// module-relative directory like "./internal/dycore", or a full import
// path within the module.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkModule()
			if err != nil {
				return nil, err
			}
			for _, p := range walked {
				add(p)
			}
		case strings.HasPrefix(pat, "./"):
			rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(pat, "./")))
			if rel == "." {
				add(l.modPath)
			} else {
				add(l.modPath + "/" + rel)
			}
		default:
			add(pat)
		}
	}
	var out []*Package
	for _, p := range paths {
		pkg, err := l.loadModulePackage(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (which may live
// under a testdata tree, invisible to the go tool) under the synthetic
// import path asPath. Imports inside the package resolve as usual, so
// testdata fixtures may import module or stdlib packages — and, once a
// fixture has been loaded, other fixtures may import it by its
// synthetic path (the multi-package fixtures behind the cross-package
// fact tests).
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.extra[asPath] = abs
	return l.check(asPath, abs, true)
}

// walkModule enumerates the import paths of every Go package under the
// module root, skipping hidden directories and testdata trees.
func (l *Loader) walkModule() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if _, err := l.ctx.ImportDir(p, 0); err != nil {
			return nil // not a Go package
		}
		rel, err := filepath.Rel(l.modRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.modPath)
		} else {
			out = append(out, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}

// dirFor maps an import path to its source directory. Stdlib packages
// import their golang.org/x/... dependencies through GOROOT's vendor
// tree (e.g. net -> golang.org/x/net/dns/dnsmessage), so paths missing
// from GOROOT/src fall back to GOROOT/src/vendor — the same resolution
// the go tool applies inside std.
func (l *Loader) dirFor(path string) string {
	if d, ok := l.extra[path]; ok {
		return d
	}
	if path == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest))
	}
	d := filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path))
	if _, err := os.Stat(d); err != nil {
		if v := filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path)); dirExists(v) {
			return v
		}
	}
	return d
}

func dirExists(p string) bool {
	st, err := os.Stat(p)
	return err == nil && st.IsDir()
}

func (l *Loader) inModule(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// loadModulePackage loads a module package with full syntax and info.
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.check(path, l.dirFor(path), true)
}

// Import implements types.Importer for dependency resolution during
// type-checking. Module-local dependencies keep their syntax and info
// (they are analysis targets too); everything else is types-only.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.typed[path]; ok {
		return tp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	pkg, err := l.check(path, l.dirFor(path), l.inModule(path))
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// ImportFrom implements types.ImporterFrom; the loader resolves by
// import path alone (no vendoring).
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}

// check parses and type-checks one package directory.
func (l *Loader) check(path, dir string, withInfo bool) (*Package, error) {
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var info *types.Info
	if withInfo {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		Sizes:       types.SizesFor("gc", l.ctx.GOARCH),
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	l.typed[path] = tpkg
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	if withInfo {
		l.pkgs[path] = pkg
	}
	return pkg, nil
}
