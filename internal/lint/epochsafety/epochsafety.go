// Package epochsafety guards the elastic-membership generation
// discipline. A resize retires a whole generation of derived objects at
// once: comm.Layout (neighbor tables), partition.DistPlan (rank→shard
// ownership) and cached index sets are all functions of one
// Decomposition, and the moment SwapLayout, SetPlan or Redistribute
// installs the next generation, every value derived from the previous
// one silently describes ranks that may no longer exist. Using a stale
// layout after a shrink is the bug class behind ghost-neighbor sends
// and double-owned shards — it type-checks, and on a cluster that never
// resizes it even works.
//
// The analyzer is a straight-line, per-block scan (the same shape as
// sendownership): within a block it tracks variables of the retirable
// named types (Layout, DistPlan, IndexSet, pointer-wrapped or not,
// plus function parameters of those types). At a call to a retiring
// method —
//
//	ex.SwapLayout(newLayout)
//	store.SetPlan(newPlan)
//	store.Redistribute(epoch, step, newPlan)
//
// — every tracked variable last bound before the new generation was
// (the binding of the call's retirable argument roots, or the call
// itself when the argument is not a block-local variable) is marked
// retired; any later use in the block is reported. Rebinding a retired
// variable (x = ..., *p = ...) un-retires it: that is exactly the
// rebuild-from-the-new-generation fix.
//
// A second, independent rule covers checkpoint manifests: a keyed
// composite literal of a struct that declares both Gen and Epoch fields
// must not set Epoch while omitting Gen — a manifest without its
// generation stamp would, after rollback, alias shards from whichever
// generation happens to share the epoch number.
package epochsafety

import (
	"go/ast"
	"go/types"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "epochsafety",
	Doc:  "forbid use of layouts/plans/index sets after SwapLayout/SetPlan/Redistribute retires their generation, and Gen-less manifest literals",
	Run:  run,
}

// retirableTypes are the named types derived from one decomposition
// generation.
var retirableTypes = map[string]bool{
	"Layout":   true,
	"DistPlan": true,
	"IndexSet": true,
}

// retiringMethods install the next generation, retiring the previous.
var retiringMethods = map[string]bool{
	"SwapLayout":   true,
	"SetPlan":      true,
	"Redistribute": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			params := paramVars(pass.TypesInfo, fd)
			ast.Inspect(fd, func(n ast.Node) bool {
				switch b := n.(type) {
				case *ast.BlockStmt:
					checkBlock(pass, b.List, params)
				case *ast.CaseClause:
					checkBlock(pass, b.Body, params)
				case *ast.CommClause:
					checkBlock(pass, b.Body, params)
				case *ast.CompositeLit:
					checkManifestLit(pass, b)
				}
				return true
			})
		}
	}
	return nil
}

// paramVars collects the function's parameters (and receiver) of
// retirable type: in scope for the whole body without a block-local
// binding, so they are tracked even when first mentioned after the
// retiring call.
func paramVars(info *types.Info, fd *ast.FuncDecl) map[*types.Var]string {
	out := make(map[*types.Var]string)
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok && isRetirable(v.Type()) {
					out[v] = name.Name
				}
			}
		}
	}
	collect(fd.Recv)
	if fd.Type.Params != nil {
		collect(fd.Type.Params)
	}
	return out
}

// checkBlock scans one statement list. State is per-block: a retiring
// call only retires what this block can see, which keeps the analysis
// obvious at the cost of missing cross-block flows.
func checkBlock(pass *lint.Pass, stmts []ast.Stmt, params map[*types.Var]string) {
	info := pass.TypesInfo
	lastBind := make(map[*types.Var]int)
	mentioned := make(map[*types.Var]bool)

	for i, st := range stmts {
		// Retiring calls in the straight-line part of this statement
		// (nested blocks run their own scan).
		for _, rc := range retireCallsIn(info, st) {
			exempt := make(map[*types.Var]bool)
			cutoff := i
			for _, root := range rc.argRoots {
				exempt[root] = true
				if bi, ok := lastBind[root]; ok && bi < cutoff {
					cutoff = bi
				}
			}
			retired := make(map[*types.Var]bool)
			for v := range mentioned {
				if !exempt[v] && bindOf(lastBind, v) < cutoff {
					retired[v] = true
				}
			}
			for v := range lastBind {
				if !exempt[v] && lastBind[v] < cutoff {
					retired[v] = true
				}
			}
			for v := range params {
				if !exempt[v] && bindOf(lastBind, v) < cutoff {
					retired[v] = true
				}
			}
			if len(retired) > 0 {
				scanAfterRetire(pass, stmts[i+1:], retired, rc.name)
			}
		}
		// Update bindings and mentions from this statement.
		straightLine(st, func(n ast.Node) {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					if v := rootVar(info, l); v != nil && isRetirable(v.Type()) {
						lastBind[v] = i
					}
				}
			case *ast.ValueSpec:
				for _, name := range x.Names {
					if v, ok := info.Defs[name].(*types.Var); ok && isRetirable(v.Type()) {
						lastBind[v] = i
					}
				}
			case *ast.Ident:
				if v, ok := info.Uses[x].(*types.Var); ok && isRetirable(v.Type()) {
					mentioned[v] = true
				}
			}
		})
	}
}

// bindOf returns v's last binding index in this block, -1 when bound
// outside it (parameter, outer block).
func bindOf(m map[*types.Var]int, v *types.Var) int {
	if i, ok := m[v]; ok {
		return i
	}
	return -1
}

// retireCall is one resolved retiring call: the method name and the
// root variables of its retirable-typed arguments (the new generation).
type retireCall struct {
	name     string
	argRoots []*types.Var
}

// retireCallsIn finds retiring calls in the straight-line part of st.
func retireCallsIn(info *types.Info, st ast.Stmt) []retireCall {
	var out []retireCall
	straightLine(st, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !retiringMethods[sel.Sel.Name] {
			return
		}
		if _, ok := info.Uses[sel.Sel].(*types.Func); !ok {
			return
		}
		rc := retireCall{name: sel.Sel.Name}
		for _, arg := range call.Args {
			if v := rootVar(info, arg); v != nil && isRetirable(v.Type()) {
				rc.argRoots = append(rc.argRoots, v)
			}
		}
		if v := rootVar(info, sel.X); v != nil {
			rc.argRoots = append(rc.argRoots, v)
		}
		out = append(out, rc)
	})
	return out
}

// scanAfterRetire reports uses of retired variables in the rest of the
// block. A rebind (x = ..., *x = ...) un-retires without a report —
// the variable now holds the new generation.
func scanAfterRetire(pass *lint.Pass, rest []ast.Stmt, retired map[*types.Var]bool, callName string) {
	info := pass.TypesInfo
	report := func(id *ast.Ident, v *types.Var) {
		pass.Reportf(id.Pos(),
			"%s was derived from a decomposition generation retired by %s above; rebuild it from the new layout/plan before use",
			id.Name, callName)
		delete(retired, v)
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if len(retired) == 0 {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, r := range x.Rhs {
				ast.Inspect(r, visit)
			}
			for _, l := range x.Lhs {
				if v, plain := plainTarget(info, l); v != nil && retired[v] {
					if plain {
						delete(retired, v) // rebound to the new generation
					} else {
						// used as part of a larger lvalue (m[old.R] = ...)
						ast.Inspect(l, visit)
					}
				} else {
					ast.Inspect(l, visit)
				}
			}
			return false
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && retired[v] {
				report(x, v)
			}
		}
		return true
	}
	for _, st := range rest {
		ast.Inspect(st, visit)
	}
}

// plainTarget reports the root variable of an lvalue and whether the
// whole lvalue is just that variable (possibly dereferenced) — the
// forms whose assignment replaces the value outright.
func plainTarget(info *types.Info, e ast.Expr) (*types.Var, bool) {
	plain := true
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			plain = false
			continue
		case *ast.SelectorExpr:
			e = x.X
			plain = false
			continue
		}
		break
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			return v, plain
		}
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v, plain
		}
	}
	return nil, false
}

// rootVar strips derefs, indexes, selectors and calls down to the
// expression's root variable, if any.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			e = x.X
			continue
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.CallExpr:
			e = x.Fun
			continue
		}
		break
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	return nil
}

// straightLine visits st without descending into nested blocks or
// function literals (those get their own scans).
func straightLine(st ast.Stmt, f func(ast.Node)) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// isRetirable unwraps pointers and reports whether the named type is in
// the retirable set.
func isRetirable(t types.Type) bool {
	for {
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := types.Unalias(t).(*types.Named)
	return ok && retirableTypes[named.Obj().Name()]
}

// checkManifestLit flags keyed composite literals of Gen+Epoch structs
// that set Epoch but omit Gen.
func checkManifestLit(pass *lint.Pass, cl *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[cl]
	if !ok || tv.Type == nil {
		return
	}
	st, ok := types.Unalias(tv.Type).Underlying().(*types.Struct)
	if !ok {
		return
	}
	hasGen, hasEpoch := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Gen":
			hasGen = true
		case "Epoch":
			hasEpoch = true
		}
	}
	if !hasGen || !hasEpoch || len(cl.Elts) == 0 {
		return
	}
	setsEpoch, setsGen := false, false
	for _, e := range cl.Elts {
		kv, ok := e.(*ast.KeyValueExpr)
		if !ok {
			return // positional literal: every field present
		}
		if id, ok := kv.Key.(*ast.Ident); ok {
			switch id.Name {
			case "Epoch":
				setsEpoch = true
			case "Gen":
				setsGen = true
			}
		}
	}
	if setsEpoch && !setsGen {
		pass.Reportf(cl.Pos(),
			"manifest literal sets Epoch but omits Gen; after a rollback this manifest would alias shards from whichever generation shares the epoch number")
	}
}
