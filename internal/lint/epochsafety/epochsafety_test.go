package epochsafety_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/epochsafety"
)

func TestEpochsafety(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "epochsafety")
	analysistest.Run(t, epochsafety.Analyzer, dir, "example.com/fix/epochsafety")
}
