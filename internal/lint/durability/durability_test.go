package durability_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/durability"
)

func TestDurability(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "durability")
	analysistest.Run(t, durability.Analyzer, dir, "example.com/fix/durability")
}
