package durability_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/durability"
)

func TestDurability(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "durability")
	analysistest.Run(t, durability.Analyzer, dir, "example.com/fix/durability")
}

// The vfs golden fixture: durable paths writing through the injectable
// filesystem seam are held to the commit ordering (Sync between create
// and Rename) and get the vfs.FS.Remove best-effort exemption.
func TestDurabilityVfs(t *testing.T) {
	base := filepath.Join("..", "testdata", "src")
	analysistest.RunWithDeps(t, durability.Analyzer,
		filepath.Join(base, "durability_vfs"), "example.com/fix/durabilityvfs",
		analysistest.Dep{Dir: filepath.Join(base, "durability_vfs_dep"), Path: "example.com/fix/vfs"},
	)
}
