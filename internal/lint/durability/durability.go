// Package durability polices the crash-consistency paths. The
// checkpoint protocol is only as strong as its weakest error check: an
// fsync whose error is dropped turns "committed" into "probably
// committed", a rename error swallowed in an export path publishes a
// manifest that points at nothing, and a CRC mismatch ignored on read
// replays garbage into the model. A function annotated
//
//	//grist:durable
//
// in its doc comment — the atomic-write helper, shard writes, manifest
// commit, parallel-IO owners, snapshot export — and every same-package
// function it statically calls must account for every error:
//
//   - a call whose error result is discarded outright (expression
//     statement) is reported;
//   - an error result assigned to the blank identifier is reported;
//   - a `:=` that binds a fresh variable named err while an outer err
//     is in scope is reported, unless it is the init clause of an
//     if/for/switch (the idiomatic scoped check) — shadowing on a
//     durable path is how a checked-looking commit returns nil after a
//     failed sync.
//
// Deliberate best-effort cleanup is exempt: deferred calls (deferred
// Close after the explicit Close-and-check is cleanup, not commit),
// goroutine launches, and os.Remove/os.RemoveAll (or vfs.FS.Remove) of
// temporaries.
//
// Durable paths that write through the injectable filesystem seam
// (internal/vfs) are additionally held to the commit ordering: a
// Rename that publishes a file created in the same function must have
// a Sync between the create and the rename. Rename-before-sync is the
// classic torn commit — the rename can reach the journal before the
// data blocks do, and a crash then exposes a fully published name
// whose bytes never hit disk.
package durability

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "durability",
	Doc:  "forbid discarded or shadowed errors in //grist:durable functions (fsync/rename/CRC/manifest-commit paths)",
	Run:  run,
}

const directive = "//grist:durable"

// bestEffort lists callees whose errors a durable path may
// legitimately drop: removing a temporary that was never published.
// vfs.FS.Remove is the injectable-filesystem twin of os.Remove — the
// atomic-write helpers discard its error on their failure paths, where
// the original error is already on its way to the caller.
var bestEffort = map[string]bool{
	"os.Remove":     true,
	"os.RemoveAll":  true,
	"vfs.FS.Remove": true,
}

// createLabels and renameLabels anchor the sync-before-rename rule:
// a durable function that calls a create and later a rename with no
// Sync in between is publishing unsynced bytes. Matching is by the
// calleeLabel form (package.Type.Method), so the rule covers both the
// os package and the vfs seam every durable path now routes through.
var createLabels = map[string]bool{
	"os.Create":         true,
	"os.CreateTemp":     true,
	"vfs.FS.Create":     true,
	"vfs.FS.CreateTemp": true,
}

var renameLabels = map[string]bool{
	"os.Rename":     true,
	"vfs.FS.Rename": true,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *lint.Pass) error {
	info := pass.TypesInfo

	decls := make(map[types.Object]*ast.FuncDecl)
	var roots []types.Object
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			decls[obj] = fd
			if hasDirective(fd) {
				roots = append(roots, obj)
			}
		}
	}

	checked := make(map[types.Object]bool)
	work := append([]types.Object(nil), roots...)
	for len(work) > 0 {
		obj := work[0]
		work = work[1:]
		if checked[obj] {
			continue
		}
		checked[obj] = true
		fd := decls[obj]
		checkFunc(pass, fd)
		// Same-package callees inherit the durable obligation.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeObject(info, call).(*types.Func); ok && fn.Pkg() == pass.Pkg {
				if _, local := decls[fn.Origin()]; local && !checked[fn.Origin()] {
					work = append(work, fn.Origin())
				}
			}
			return true
		})
	}
	return nil
}

func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// checkFunc applies the three rules to one durable function body.
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false // best-effort cleanup / detached work
		case *ast.ExprStmt:
			call, ok := x.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pos, callName := discardedError(info, call); pos.IsValid() {
				pass.Reportf(pos,
					"error result of %s is discarded on durable path %s; a dropped error here turns committed into probably-committed",
					callName, name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, x, name)
		}
		return true
	})
	checkSyncBeforeRename(pass, fd)
}

// checkSyncBeforeRename flags the rename-before-sync torn commit: a
// durable function that creates a file and renames one into place with
// no Sync call between the latest create and the rename publishes a
// name whose bytes may not be on disk. The check is per-function and
// source-ordered — helpers that create-and-sync for a caller that
// renames are split across functions and stay out of scope, which
// keeps the rule free of false positives at the cost of missing
// cross-function splits.
func checkSyncBeforeRename(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	type labeled struct {
		pos   token.Pos
		label string
	}
	var calls []labeled
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false // cleanup/detached, same as the error rules
		}
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, labeled{c.Pos(), calleeLabel(info, c)})
		}
		return true
	})
	sort.Slice(calls, func(i, j int) bool { return calls[i].pos < calls[j].pos })
	for i, c := range calls {
		if !renameLabels[c.label] {
			continue
		}
		created := -1
		for j := 0; j < i; j++ {
			if createLabels[calls[j].label] {
				created = j
			}
		}
		if created < 0 {
			continue
		}
		synced := false
		for j := created + 1; j < i; j++ {
			if strings.HasSuffix(calls[j].label, ".Sync") {
				synced = true
				break
			}
		}
		if !synced {
			pass.Reportf(c.pos,
				"%s on durable path %s with no Sync between create and rename; rename-before-sync publishes a name whose bytes may not be on disk",
				c.label, fd.Name.Name)
		}
	}
}

// discardedError reports whether call returns an error that the
// expression statement drops, and where to report it.
func discardedError(info *types.Info, call *ast.CallExpr) (token.Pos, string) {
	sig := callSignature(info, call)
	if sig == nil {
		return token.NoPos, ""
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			label := calleeLabel(info, call)
			if bestEffort[label] {
				return token.NoPos, ""
			}
			return call.Pos(), label
		}
	}
	return token.NoPos, ""
}

// checkAssign flags error results assigned to _ and fresh err variables
// shadowing an outer err outside an if/for/switch init clause.
func checkAssign(pass *lint.Pass, as *ast.AssignStmt, fnName string) {
	info := pass.TypesInfo
	// _ in an error position.
	for i, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := lhsType(info, as, i)
		if t != nil && types.Identical(t, errorType) {
			pass.Reportf(l.Pos(),
				"error result assigned to _ on durable path %s; check it or name the reason it cannot fail",
				fnName)
		}
	}
	// Fresh err shadowing an outer err.
	if as.Tok != token.DEFINE || initClause(pass, as) {
		return
	}
	for _, l := range as.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "err" {
			continue
		}
		obj, fresh := info.Defs[id]
		if !fresh || obj == nil {
			continue
		}
		scope := pass.Pkg.Scope().Innermost(id.Pos())
		if scope == nil {
			continue
		}
		if outer := lookupOuter(scope, obj, id.Pos()); outer != nil {
			pass.Reportf(id.Pos(),
				"err shadows an outer err on durable path %s; the outer error a caller sees stays nil after this block fails",
				fnName)
		}
	}
}

// lookupOuter finds a different variable named err in an enclosing
// scope.
func lookupOuter(scope *types.Scope, inner types.Object, pos token.Pos) types.Object {
	s := scope.Parent()
	for s != nil {
		if obj := s.Lookup("err"); obj != nil && obj != inner {
			if v, ok := obj.(*types.Var); ok && v.Pos() < pos {
				return obj
			}
		}
		s = s.Parent()
	}
	return nil
}

// initClause reports whether as is the init statement of an if, for or
// switch — the idiomatic scoped error check, which shadows on purpose.
func initClause(pass *lint.Pass, as *ast.AssignStmt) bool {
	for _, f := range pass.Files {
		if f.Pos() <= as.Pos() && as.End() <= f.End() {
			found := false
			ast.Inspect(f, func(n ast.Node) bool {
				if found || n == nil || !(n.Pos() <= as.Pos() && as.End() <= n.End()) {
					return !found
				}
				switch x := n.(type) {
				case *ast.IfStmt:
					if x.Init == as {
						found = true
					}
				case *ast.ForStmt:
					if x.Init == as {
						found = true
					}
				case *ast.SwitchStmt:
					if x.Init == as {
						found = true
					}
				case *ast.TypeSwitchStmt:
					if x.Init == as {
						found = true
					}
				}
				return !found
			})
			return found
		}
	}
	return false
}

// lhsType resolves the type flowing into Lhs[i].
func lhsType(info *types.Info, as *ast.AssignStmt, i int) types.Type {
	if len(as.Rhs) == len(as.Lhs) {
		if tv, ok := info.Types[as.Rhs[i]]; ok {
			return tv.Type
		}
		return nil
	}
	// Multi-value: a single call/index/recv on the right.
	if len(as.Rhs) != 1 {
		return nil
	}
	tv, ok := info.Types[as.Rhs[0]]
	if !ok || tv.Type == nil {
		return nil
	}
	if tup, ok := tv.Type.(*types.Tuple); ok && i < tup.Len() {
		return tup.At(i).Type()
	}
	return nil
}

// callSignature resolves the called function's signature, nil for type
// conversions and built-ins.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := types.Unalias(tv.Type).Underlying().(*types.Signature)
	return sig
}

// calleeObject resolves the called object through parens and generic
// instantiation.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// calleeLabel renders pkg.Func, pkg.Type.Method or a best-effort
// expression string for messages and the bestEffort table.
func calleeLabel(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return types.ExprString(call.Fun)
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
