package lint

// Suppression budget. Every //lint:ignore in the tree is a hole in an
// invariant; the baseline file records how many holes each analyzer is
// allowed, so `make lint` fails the moment a change adds a suppression
// instead of a fix. Shrinking is always permitted (and the failure
// message asks for the baseline to be re-recorded so the budget
// ratchets down); growing requires deliberately rewriting the baseline
// in the same commit, where a reviewer sees it.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"sort"
	"strings"
)

// Baseline is the recorded suppression budget: //lint:ignore directive
// counts per analyzer name (the wildcard directive counts under "*").
type Baseline struct {
	Ignores map[string]int `json:"ignores"`
}

// CountIgnores tallies the well-formed //lint:ignore directives of the
// given packages per analyzer name. A directive naming several
// analyzers counts once for each; malformed directives (no reason) are
// excluded — they are diagnostics, not suppressions.
func CountIgnores(pkgs []*Package) map[string]int {
	counts := make(map[string]int)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			countFileIgnores(f, counts)
		}
	}
	return counts
}

func countFileIgnores(f *ast.File, counts map[string]int) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
			if len(fields) < 2 {
				continue // malformed: reported by collectIgnores, not budgeted
			}
			for _, name := range strings.Split(fields[0], ",") {
				counts[name]++
			}
		}
	}
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	if b.Ignores == nil {
		b.Ignores = map[string]int{}
	}
	return &b, nil
}

// WriteBaseline records the given counts as the new baseline, with keys
// sorted for a stable diff.
func WriteBaseline(path string, counts map[string]int) error {
	b := Baseline{Ignores: counts}
	if b.Ignores == nil {
		b.Ignores = map[string]int{}
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Check compares measured ignore counts against the baseline and
// returns one human-readable violation per analyzer whose count grew
// (sorted by name; empty means within budget). Counts below baseline
// produce a non-fatal note via the second return so the caller can ask
// for the baseline to be ratcheted down.
func (b *Baseline) Check(counts map[string]int) (violations, notes []string) {
	names := make(map[string]bool)
	for n := range counts {
		names[n] = true
	}
	for n := range b.Ignores {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		got, want := counts[n], b.Ignores[n]
		switch {
		case got > want:
			violations = append(violations,
				fmt.Sprintf("suppression budget exceeded for %q: %d //lint:ignore directive(s), baseline allows %d — fix the finding or rewrite the baseline deliberately", n, got, want))
		case got < want:
			notes = append(notes,
				fmt.Sprintf("suppressions for %q shrank to %d (baseline %d); re-record the baseline to ratchet the budget down", n, got, want))
		}
	}
	return violations, notes
}
