package stencilsafety_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/stencilsafety"
)

func TestStencilsafety(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "stencilsafety")
	analysistest.Run(t, stencilsafety.Analyzer, dir, "example.com/fix/stencilsafety")
}

// TestMissingRegistryInDycore loads a registry-less fixture under an
// import path ending in internal/dycore, where declaring the registry
// is mandatory.
func TestMissingRegistryInDycore(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "stencilsafety_noreg")
	analysistest.Run(t, stencilsafety.Analyzer, dir, "example.com/internal/dycore")
}

// TestNoRegistryElsewhere: outside dycore, a package without a registry
// opts out of the check entirely.
func TestNoRegistryElsewhere(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "stencilsafety_noreg")
	analysistest.RunExpectNone(t, stencilsafety.Analyzer, dir, "example.com/fix/noreg")
}
