// Package stencilsafety guards the overlapped halo exchange: a dycore
// kernel that reads through mesh adjacency (neighbor/edge index slices)
// computes a stencil, and during a Start → interior → Finish → boundary
// round an unregistered stencil can read stale halo data without any
// test noticing — the serial runs stay bit-identical. The taint
// classification that partitions every kernel's iteration space lives in
// dycore/overlap.go (splitSets); this analyzer forces the two to stay in
// sync by requiring every adjacency-walking function to appear in the
// package's stencilRegistry variable, whose entries name the taint class
// (or exemption reason) the kernel was audited against.
//
// Mechanics: in any package that declares
//
//	var stencilRegistry = map[string]string{ "recv.func": "role", ... }
//
// (and in any package whose import path ends in internal/dycore, where
// the registry is mandatory), every function whose body mentions an
// adjacency member — a selector like m.CellEdge, m.EdgeCell,
// m.VertEdge, m.TrskEdge ... on a value of a type named Mesh — must
// have its "recv.func" (methods) or "func" (functions) key registered.
//
// Since the decomposition became a run-time object, the same applies
// one indirection out: members that carry halo structure through the
// swappable decomposition handle (Owned/Halo/Peers on a Decomposition,
// Send/Recv on a halo IndexSet) mark a function as stencil-bound just
// like the mesh CSR arrays do — an elastic repartition changes exactly
// that data underneath an unregistered kernel.
package stencilsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "stencilsafety",
	Doc:  "require every mesh-adjacency-walking dycore function to be registered in overlap.go's stencilRegistry",
	Run:  run,
}

// registryVar is the package-level declaration the analyzer reads.
const registryVar = "stencilRegistry"

// adjacencyCarriers maps type names to the members that express
// neighborhood structure; touching one makes a function a stencil.
// Purely geometric per-entity fields (areas, lengths, latitudes) are
// deliberately absent: reading them is halo-safe.
//
// Beyond the mesh itself, the run-time decomposition handle carries the
// same hazard one indirection away: a kernel that walks a
// Decomposition's owned/halo index lists, or a halo Layout's send/recv
// sets, derives its iteration space from the swappable decomposition —
// exactly the data an elastic repartition changes under it — so it is
// stencil-bound and must be classified too.
var adjacencyCarriers = map[string]map[string]bool{
	"Mesh": {
		"CellOff":   true,
		"CellEdge":  true,
		"CellCell":  true,
		"CellEdges": true,
		"EdgeCell":  true,
		"EdgeVert":  true,
		"VertEdge":  true,
		"TrskOff":   true,
		"TrskEdge":  true,
	},
	"Decomposition": {
		"Owned": true,
		"Halo":  true,
		"Peers": true,
	},
	"IndexSet": {
		"Send": true,
		"Recv": true,
	},
}

func run(pass *lint.Pass) error {
	registry := findRegistry(pass)
	if registry == nil {
		if strings.HasSuffix(pass.Path, "internal/dycore") {
			pass.Reportf(pass.Files[0].Package,
				"package %s must declare %s (see overlap.go): it is the audit trail tying every adjacency-walking kernel to its splitSets taint class", pass.Path, registryVar)
		}
		return nil
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			member, pos := firstAdjacencyUse(pass.TypesInfo, fd.Body)
			if member == "" {
				continue
			}
			key := funcKey(fd)
			if _, ok := registry[key]; !ok {
				pass.Reportf(pos,
					"%s walks adjacency (%s) but is not registered in %s; classify it against the splitSets taint partition in overlap.go (or record why it is exempt) before it can run under an overlapped exchange",
					key, member, registryVar)
			}
		}
	}
	return nil
}

// findRegistry locates `var stencilRegistry = map[string]string{...}`
// and returns its keys.
func findRegistry(pass *lint.Pass) map[string]bool {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != registryVar || len(vs.Values) != 1 {
					continue
				}
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				keys := make(map[string]bool)
				for _, el := range cl.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					lit, ok := kv.Key.(*ast.BasicLit)
					if !ok {
						continue
					}
					if s, err := strconv.Unquote(lit.Value); err == nil {
						keys[s] = true
					}
				}
				return keys
			}
		}
	}
	return nil
}

// firstAdjacencyUse returns the first adjacency member referenced on an
// adjacency-carrying value (Mesh, Decomposition, IndexSet) inside the
// body, with its position.
func firstAdjacencyUse(info *types.Info, body *ast.BlockStmt) (string, token.Pos) {
	member := ""
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if member != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		members, ok := adjacencyCarriers[namedTypeOf(info, sel.X)]
		if !ok || !members[sel.Sel.Name] {
			return true
		}
		member = sel.Sel.Name
		pos = sel.Pos()
		return false
	})
	return member, pos
}

// namedTypeOf returns the name of e's (pointer-stripped) named type, or
// "" when it has none.
func namedTypeOf(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// funcKey renders "recv.name" for methods, "name" for functions,
// matching the stencilRegistry key convention.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
			continue
		case *ast.IndexExpr: // generic receiver engine[T]
			t = x.X
			continue
		case *ast.IndexListExpr:
			t = x.X
			continue
		case *ast.ParenExpr:
			t = x.X
			continue
		}
		break
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}
