// Package sendownership enforces the transport buffer-ownership rule of
// the comm layer: a payload slice handed to Rank.ISend / Rank.Send is
// transport-owned for the rest of the communication round, and a buffer
// posted with Rank.IRecv belongs to the transport until its request
// completes. Touching either from the caller before a synchronization
// point is the aliasing hazard the halo layer's copy-on-send design
// exists to prevent — and the hazard returns the moment anyone swaps the
// in-process transport for a zero-copy one, so the discipline is
// enforced statically rather than left to the transport du jour.
//
// The check is function-local and syntactic about aliasing: after a
// statement that passes a trackable buffer expression (an identifier,
// selector chain, or index expression) to ISend/Send/IRecv, any further
// mention of that same expression in the following statements of the
// enclosing block is reported, until a synchronization call (Wait,
// WaitAll, Finish, Exchange, Barrier, Recv) is reached. Buffers that
// only exist as call results (e.g. ISend(q, tag, pack(pi))) cannot be
// misused by name and are not tracked.
//
// With the decomposition a run-time object, the analyzer also guards
// the layout handle the same way: HaloExchanger.SwapLayout rebinds the
// exchanger to a repartitioned decomposition, and calling it between
// Start and Finish mutates the index sets of an in-flight round — a
// runtime panic in the exchanger, reported statically here. The window
// opens at a Start call on an exchanger expression and closes at the
// next synchronization call on the same expression.
package sendownership

import (
	"go/ast"
	"go/types"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "sendownership",
	Doc:  "report use of a payload slice after handing it to comm Send/ISend/IRecv and before the round completes",
	Run:  run,
}

// transferMethods maps the comm.Rank methods that transfer buffer
// ownership to the index of the buffer argument.
var transferMethods = map[string]int{
	"ISend": 2, // (to, tag, data)
	"Send":  2, // (to, tag, data)
	"IRecv": 2, // (from, tag, dst)
}

// syncMethods end the transport's ownership window.
var syncMethods = map[string]bool{
	"Wait":     true,
	"WaitAll":  true,
	"Finish":   true,
	"Exchange": true,
	"Barrier":  true,
	"Recv":     true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				checkBlock(pass, body.List)
			}
			return true
		})
	}
	return nil
}

// checkBlock scans one statement list in source order. For every
// transfer found in the straight-line part of a statement, the remaining
// statements of the same list are scanned for mentions of the
// transferred buffer until a sync call shows up. Transfers inside nested
// blocks (if/for/switch bodies) are scoped to their own block by the
// recursion: a guard branch that sends and returns does not taint the
// fall-through path.
func checkBlock(pass *lint.Pass, stmts []ast.Stmt) {
	for i, st := range stmts {
		switch s := st.(type) {
		case *ast.BlockStmt:
			checkBlock(pass, s.List)
		case *ast.IfStmt:
			checkBlock(pass, s.Body.List)
			switch el := s.Else.(type) {
			case *ast.BlockStmt:
				checkBlock(pass, el.List)
			case *ast.IfStmt:
				checkBlock(pass, []ast.Stmt{el})
			}
		case *ast.ForStmt:
			checkBlock(pass, s.Body.List)
		case *ast.RangeStmt:
			checkBlock(pass, s.Body.List)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkBlock(pass, cc.Body)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkBlock(pass, cc.Body)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					checkBlock(pass, cc.Body)
				}
			}
		}

		for _, tr := range transfersIn(pass, st) {
			scanAfter(pass, stmts[i+1:], tr)
		}
		for _, recv := range roundStartsIn(pass, st) {
			scanRoundAfter(pass, stmts[i+1:], recv)
		}
	}
}

// roundStartsIn finds Start calls on trackable exchanger expressions in
// the straight-line part of a single statement — each opens an
// in-flight-round window for its receiver.
func roundStartsIn(pass *lint.Pass, st ast.Stmt) []string {
	var out []string
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv, ok := rankMethodRecv(pass.TypesInfo, call)
		if !ok || name != "Start" {
			return true
		}
		if s := trackable(recv); s != "" {
			out = append(out, s)
		}
		return true
	})
	return out
}

// scanRoundAfter walks the trailing statements of a Start call looking
// for a SwapLayout on the same exchanger, stopping at the first
// synchronization call on it (Finish/Exchange/Wait/WaitAll) or at a
// rebinding of the exchanger variable.
func scanRoundAfter(pass *lint.Pass, stmts []ast.Stmt, recv string) {
	done := false
	for _, st := range stmts {
		if done {
			return
		}
		ast.Inspect(st, func(n ast.Node) bool {
			if done {
				return false
			}
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if trackable(l) == recv {
						done = true // exchanger rebound: the tracked round is gone
						return false
					}
				}
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, r, ok := rankMethodRecv(pass.TypesInfo, call)
			if !ok || trackable(r) != recv {
				return true
			}
			if syncMethods[name] {
				done = true
				return false
			}
			if name == "SwapLayout" {
				pass.Reportf(call.Pos(),
					"%s.SwapLayout between Start and Finish mutates the halo layout of an in-flight round; complete the round (Finish/Exchange) before repartitioning",
					recv)
				done = true // one report per round is enough
				return false
			}
			return true
		})
	}
}

// transfer records one buffer handed to the transport.
type transfer struct {
	expr   string // printed form of the buffer expression
	method string
}

// transfersIn finds ownership transfers in the straight-line part of a
// single statement: nested blocks and function literals are skipped —
// checkBlock's recursion gives each its own trailing-statement scan.
func transfersIn(pass *lint.Pass, st ast.Stmt) []transfer {
	var out []transfer
	ast.Inspect(st, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := rankMethod(pass.TypesInfo, call)
		if !ok {
			return true
		}
		argIdx, isTransfer := transferMethods[name]
		if !isTransfer || len(call.Args) <= argIdx {
			return true
		}
		if s := trackable(call.Args[argIdx]); s != "" {
			out = append(out, transfer{expr: s, method: name})
		}
		return true
	})
	return out
}

// scanAfter walks the trailing statements looking for mentions of the
// transferred buffer, stopping at the first synchronization call.
func scanAfter(pass *lint.Pass, stmts []ast.Stmt, tr transfer) {
	done := false
	for _, st := range stmts {
		if done {
			return
		}
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if done {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name, ok := rankMethod(pass.TypesInfo, call); ok && syncMethods[name] {
					done = true
					return false
				}
			}
			// Rebinding the whole variable releases the tracked buffer:
			// the name no longer aliases the transport-owned memory.
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, r := range as.Rhs {
					ast.Inspect(r, visit)
				}
				for _, l := range as.Lhs {
					if trackable(l) == tr.expr {
						done = true
						return false
					}
					ast.Inspect(l, visit)
				}
				return false
			}
			if e, ok := n.(ast.Expr); ok && trackable(e) == tr.expr {
				pass.Reportf(n.Pos(),
					"%s is transport-owned after %s; reading or writing it before the round completes races a zero-copy transport (synchronize with Wait/WaitAll/Finish first)",
					tr.expr, tr.method)
				done = true // one report per transfer is enough
				return false
			}
			return true
		}
		ast.Inspect(st, visit)
	}
}

// rankMethod reports whether call invokes a method on comm.Rank (or a
// value of a type named Rank/HaloExchanger, so testdata fixtures work)
// and returns the method name.
func rankMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	name, _, ok := rankMethodRecv(info, call)
	return name, ok
}

// rankMethodRecv is rankMethod returning the receiver expression too.
func rankMethodRecv(info *types.Info, call *ast.CallExpr) (string, ast.Expr, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", nil, false
	}
	t := tv.Type
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", nil, false
	}
	switch named.Obj().Name() {
	case "Rank", "HaloExchanger":
		return sel.Sel.Name, sel.X, true
	}
	return "", nil, false
}

// trackable renders identifier/selector/index expressions to a stable
// string; anything else returns "".
func trackable(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := trackable(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.IndexExpr:
		base := trackable(x.X)
		idx := trackable(x.Index)
		if base == "" || idx == "" {
			return ""
		}
		return base + "[" + idx + "]"
	case *ast.BasicLit:
		return x.Value
	}
	return ""
}
