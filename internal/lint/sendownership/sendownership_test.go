package sendownership_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/sendownership"
)

func TestSendownership(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "sendownership")
	analysistest.Run(t, sendownership.Analyzer, dir, "example.com/fix/sendownership")
}
