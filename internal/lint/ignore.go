package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directive: a comment of the form
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// on the offending line, or on a line of its own immediately above it,
// silences the named analyzers' findings on that line. The reason is
// mandatory — an ignore without one is itself a diagnostic, so every
// suppression in the tree documents why the invariant does not apply.
// The marker "*" suppresses every analyzer.
const ignorePrefix = "//lint:ignore"

// ignoreSet indexes the well-formed directives of one package by
// (file, line) and carries diagnostics for the malformed ones.
type ignoreSet struct {
	byLine    map[string]map[int][]string // file -> line -> analyzer names
	malformed []Diagnostic
}

// collectIgnores scans every comment of the package.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) < 2 {
					ig.malformed = append(ig.malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed //lint:ignore: need an analyzer name and a reason (//lint:ignore name why-this-is-safe)",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				m := ig.byLine[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					ig.byLine[pos.Filename] = m
				}
				// The directive covers its own line; a directive on a line
				// of its own also covers the next line. Registering both is
				// harmless for end-of-line comments.
				m[pos.Line] = append(m[pos.Line], names...)
				m[pos.Line+1] = append(m[pos.Line+1], names...)
			}
		}
	}
	return ig
}

// suppresses reports whether a well-formed directive covers d.
func (ig *ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	for _, name := range ig.byLine[pos.Filename][pos.Line] {
		if name == "*" || name == d.Analyzer {
			return true
		}
	}
	return false
}
