// Package determinism enforces the bitwise-reproducibility discipline
// of the scaling argument: every rank must derive identical decisions
// from (seed, coordinates, epoch) alone, because the elastic membership
// agreement and rollback-and-replay recovery both assume any process
// can recompute the same answer communication-free. A function
// annotated
//
//	//grist:bitwise
//
// in its doc comment — the repartition path, checkpoint commit, the
// gather kernels, every EpochSeed consumer — and every function it
// statically calls must avoid the constructs whose results depend on
// scheduling, wall-clock, or Go's randomized map order:
//
//   - ranging over a map when the iteration order can escape (writes to
//     state declared outside the loop, calls, sends, returns) — iterate
//     a sorted key slice instead; collecting keys with the self-append
//     idiom `keys = append(keys, k)` is permitted, as the first half of
//     the collect-and-sort fix (the analyzer trusts the sort follows);
//   - wall-clock reads (time.Now, time.Since, time.Until) — telemetry
//     wrappers live in internal/telemetry, which is whitelisted as an
//     observability sidecar that never feeds model state;
//   - the global math/rand generators — internal/detrand is the single
//     sanctioned randomness source (seeded, coordinate-addressable);
//
// Propagation crosses package boundaries: analyzing a package exports a
// per-function determinism summary (a fact), and later packages —
// lint.Run analyzes in import dependency order — see their module-local
// callees' summaries, so a bitwise root in internal/core is checked
// through its calls into internal/partition without either package
// re-reading the other's source. Calls that cannot be resolved to a
// declaration (function values, interface methods, stdlib without
// facts) are not followed, as in hotpathalloc.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"gristgo/internal/lint"
)

var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc:  "forbid map-order, wall-clock and global-rand dependence in //grist:bitwise functions and their callees (cross-package)",
	Run:  run,
}

// directive marks a bitwise-critical function in its doc comment.
const directive = "//grist:bitwise"

// exemptCalleeSuffixes are packages whose calls are always treated as
// deterministic: detrand is the sanctioned randomness source, telemetry
// is the observability sidecar (spans and counters read the clock but
// never feed state back into the model).
var exemptCalleeSuffixes = []string{"internal/detrand", "internal/telemetry"}

// Fact is the per-function determinism summary exported for
// cross-package propagation: present means the function (transitively)
// contains a nondeterministic construct, and Reason says which.
type Fact struct {
	Reason string
}

// finding is one position-precise nondeterministic construct.
type finding struct {
	pos token.Pos
	msg string
}

// callSite is one statically resolved call out of a function.
type callSite struct {
	obj *types.Func
	pos token.Pos
}

// fnSummary is the per-function analysis result.
type fnSummary struct {
	decl     *ast.FuncDecl
	findings []finding
	samePkg  []callSite // callees declared in this package
	crossPkg []callSite // callees declared elsewhere
}

func run(pass *lint.Pass) error {
	info := pass.TypesInfo

	sums := make(map[types.Object]*fnSummary)
	var roots []types.Object
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			sums[obj] = analyzeFunc(pass, fd)
			if hasDirective(fd) {
				roots = append(roots, obj)
			}
		}
	}

	// Transitive nondeterminism fixpoint over the package: a function is
	// nondeterministic if it contains a construct itself, calls a
	// same-package function that is, or calls a cross-package function
	// whose exported fact says so.
	reason := make(map[types.Object]string)
	for obj, s := range sums {
		if len(s.findings) > 0 {
			pos := pass.Fset.Position(s.findings[0].pos)
			reason[obj] = fmt.Sprintf("%s (%s:%d)", s.findings[0].msg, shortFile(pos.Filename), pos.Line)
		}
	}
	for obj, s := range sums {
		if _, done := reason[obj]; done {
			continue
		}
		for _, c := range s.crossPkg {
			if f, ok := importFact(pass, c.obj); ok {
				reason[obj] = fmt.Sprintf("calls %s, which is nondeterministic: %s", calleeLabel(c.obj), f.Reason)
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, s := range sums {
			if _, done := reason[obj]; done {
				continue
			}
			for _, c := range s.samePkg {
				if r, ok := reason[c.obj.Origin()]; ok {
					reason[obj] = fmt.Sprintf("calls %s, which is nondeterministic: %s", c.obj.Name(), r)
					changed = true
					break
				}
			}
		}
	}
	for obj := range sums {
		if r, ok := reason[obj]; ok {
			pass.ExportObjectFact(obj, Fact{Reason: r})
		}
	}

	// Report position-precise findings in every function reachable from
	// a //grist:bitwise root through same-package calls, and flag calls
	// that cross into a package whose summary is nondeterministic.
	checked := make(map[types.Object]bool)
	work := append([]types.Object(nil), roots...)
	for len(work) > 0 {
		obj := work[0]
		work = work[1:]
		if checked[obj] {
			continue
		}
		checked[obj] = true
		s, ok := sums[obj]
		if !ok {
			continue
		}
		for _, f := range s.findings {
			pass.Reportf(f.pos, "%s in bitwise-critical %s", f.msg, s.decl.Name.Name)
		}
		for _, c := range s.crossPkg {
			if f, ok := importFact(pass, c.obj); ok {
				pass.Reportf(c.pos, "call to %s in bitwise-critical %s is nondeterministic: %s",
					calleeLabel(c.obj), s.decl.Name.Name, f.Reason)
			}
		}
		for _, c := range s.samePkg {
			if !checked[c.obj.Origin()] {
				work = append(work, c.obj.Origin())
			}
		}
	}
	return nil
}

// importFact resolves the callee's exported Fact, honoring the
// whitelist.
func importFact(pass *lint.Pass, fn *types.Func) (Fact, bool) {
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		for _, suf := range exemptCalleeSuffixes {
			if strings.HasSuffix(path, suf) {
				return Fact{}, false
			}
		}
	}
	v, ok := pass.ImportObjectFact(fn.Origin())
	if !ok {
		return Fact{}, false
	}
	f, ok := v.(Fact)
	return f, ok
}

func hasDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// analyzeFunc walks one function body collecting nondeterministic
// constructs and resolved call sites.
func analyzeFunc(pass *lint.Pass, fd *ast.FuncDecl) *fnSummary {
	info := pass.TypesInfo
	s := &fnSummary{decl: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info, x.X) && orderEscapes(info, x) {
				s.findings = append(s.findings, finding{
					pos: x.Pos(),
					msg: fmt.Sprintf("map iteration order over %s escapes", types.ExprString(x.X)) +
						"; collect and sort the keys first so every rank walks the same sequence",
				})
			}
		case *ast.CallExpr:
			s.visitCall(info, x, pass)
		}
		return true
	})
	return s
}

func (s *fnSummary) visitCall(info *types.Info, call *ast.CallExpr, pass *lint.Pass) {
	obj := calleeObject(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	switch pkg.Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			s.findings = append(s.findings, finding{
				pos: call.Pos(),
				msg: fmt.Sprintf("wall-clock read time.%s", fn.Name()) +
					"; bitwise paths must derive every decision from (seed, coordinates, epoch)",
			})
		}
		return
	case "math/rand", "math/rand/v2":
		// Only the global-generator draws (rand.Intn, rand.Float64, ...)
		// are nondeterministic; the New* constructors build explicitly
		// seeded generators, which are fine.
		if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			s.findings = append(s.findings, finding{
				pos: call.Pos(),
				msg: fmt.Sprintf("global math/rand draw rand.%s", fn.Name()) +
					"; use internal/detrand, the sanctioned seeded source",
			})
		}
		return
	}
	if pkg == pass.Pkg {
		s.samePkg = append(s.samePkg, callSite{obj: fn, pos: call.Pos()})
	} else {
		s.crossPkg = append(s.crossPkg, callSite{obj: fn, pos: call.Pos()})
	}
}

// isMapType reports whether e's type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := types.Unalias(tv.Type).Underlying().(*types.Map)
	return isMap
}

// orderEscapes reports whether the range body can observe or leak the
// iteration order: any write to a variable declared outside the loop,
// any call other than the order-insensitive builtins (len, cap, min,
// max, delete of the ranged key), any channel operation, return, defer
// or goroutine launch. A body that only fills loop-local state cannot
// fork ranks on map order.
func orderEscapes(info *types.Info, rs *ast.RangeStmt) bool {
	escapes := false
	allowedCall := make(map[ast.Node]bool)
	declaredInside := func(id *ast.Ident) bool {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return false // unresolved: assume outside (conservative)
		}
		return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()
	}
	markOutsideWrite := func(e ast.Expr) {
		// The written location's root variable decides locality.
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
				continue
			case *ast.StarExpr:
				e = x.X
				continue
			case *ast.IndexExpr:
				e = x.X
				continue
			case *ast.SelectorExpr:
				e = x.X
				continue
			}
			break
		}
		if id, ok := e.(*ast.Ident); ok {
			if id.Name == "_" || declaredInside(id) {
				return
			}
		}
		escapes = true
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			// keys = append(keys, k): the sanctioned collection idiom.
			if call, ok := selfAppend(info, x); ok {
				allowedCall[call] = true
				return true
			}
			for _, l := range x.Lhs {
				markOutsideWrite(l)
			}
		case *ast.IncDecStmt:
			markOutsideWrite(x.X)
		case *ast.CallExpr:
			if allowedCall[x] {
				return true
			}
			if b, ok := calleeObject(info, x).(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "min", "max", "delete":
					return true
				}
			}
			escapes = true
		case *ast.SendStmt, *ast.ReturnStmt, *ast.GoStmt, *ast.DeferStmt:
			escapes = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

// selfAppend matches `x = append(x, ...)` — collecting keys or values
// into a slice for a later sort.
func selfAppend(info *types.Info, as *ast.AssignStmt) (*ast.CallExpr, bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	if b, ok := calleeObject(info, call).(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	arg0, ok := call.Args[0].(*ast.Ident)
	if !ok || info.Uses[arg0] == nil || info.Uses[arg0] != info.Uses[lhs] {
		return nil, false
	}
	return call, true
}

// calleeObject resolves the called object, seeing through parens and
// generic instantiation.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	fun := call.Fun
	for {
		switch f := fun.(type) {
		case *ast.ParenExpr:
			fun = f.X
			continue
		case *ast.IndexExpr:
			fun = f.X
			continue
		case *ast.IndexListExpr:
			fun = f.X
			continue
		}
		break
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// calleeLabel renders pkg.Func or pkg.(Type).Method for messages.
func calleeLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// shortFile trims the path to its last two elements for messages.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
