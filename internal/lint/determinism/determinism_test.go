package determinism_test

import (
	"path/filepath"
	"testing"

	"gristgo/internal/lint/analysistest"
	"gristgo/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	base := filepath.Join("..", "testdata", "src")
	analysistest.RunWithDeps(t, determinism.Analyzer,
		filepath.Join(base, "determinism"), "example.com/fix/determinism",
		analysistest.Dep{Dir: filepath.Join(base, "determinism_dep"), Path: "example.com/fix/detdep"},
		// Loaded under a path ending in internal/detrand so the fixture
		// exercises the whitelist: Jitter reads the clock, callers are
		// not flagged.
		analysistest.Dep{Dir: filepath.Join(base, "determinism_detrand"), Path: "example.com/fix/internal/detrand"},
	)
}
