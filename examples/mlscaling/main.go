// mlscaling: the machine-scale studies of the paper — Fig. 9 kernel
// accelerations on the simulated SW26010P, the Fig. 10 weak scaling and
// Fig. 11 strong scaling on the modeled 34-million-core system, and the
// Fig. 2 landscape placing this work among published GSRM efforts.
//
//	go run ./examples/mlscaling
package main

import (
	"fmt"

	"gristgo/internal/experiments"
)

func main() {
	fmt.Println("=== Fig. 9: kernel speedups over 64 CPEs (G4 workload) ===")
	for _, row := range experiments.RunFig9(4, 16).Rows() {
		fmt.Println(row)
	}
	fmt.Println()

	fmt.Println("=== Fig. 10: weak scaling, 128 -> 524,288 CGs ===")
	for _, row := range experiments.Fig10Rows() {
		fmt.Println(row)
	}
	fmt.Println()

	fmt.Println("=== Fig. 11: strong scaling, G12 + G11S ===")
	for _, row := range experiments.Fig11Rows() {
		fmt.Println(row)
	}
	fmt.Println()

	fmt.Println("=== Fig. 2: GSRM efforts landscape ===")
	for _, row := range experiments.Fig2Rows() {
		fmt.Println(row)
	}
}
