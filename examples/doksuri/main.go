// Doksuri: the paper's Fig. 7 extreme-weather case at reproduction
// scale. A warm-core typhoon vortex south of North China feeds moisture
// into a Taihang-like ridge; the case is simulated at two horizontal
// resolutions and both are scored against the synthetic CMPA analysis.
// Expect the finer-horizontal member to correlate better — the paper's
// "horizontal resolution beats vertical levels" finding.
//
//	go run ./examples/doksuri
package main

import (
	"fmt"

	"gristgo/internal/experiments"
	"gristgo/internal/mesh"
	"gristgo/internal/synthclim"
)

func main() {
	fmt.Println("Typhoon Doksuri / \"23.7\" North China extreme rainfall (Fig. 7)")
	fmt.Println()

	// Show the observed analysis around the rainfall core.
	cs := synthclim.NewDoksuriCase()
	m := mesh.New(5)
	obs := cs.RainfallOnMesh(m)
	fmt.Println("CMPA-substitute 24h rainfall analysis (East Asia):")
	fmt.Println(experiments.RainMapASCII(m, obs,
		0.35, 0.85, 1.85, 2.25, 60, 16))

	cfg := experiments.DefaultFig7Config()
	fmt.Printf("Running %s and %s members for %.0f hours each...\n",
		fmt.Sprintf("G%dL%d", cfg.CoarseLevel, cfg.CoarseLayers),
		fmt.Sprintf("G%dL%d", cfg.FineLevel, cfg.FineLayers), cfg.Hours)
	r := experiments.RunFig7(cfg)
	fmt.Println()
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	fmt.Println()
	if r.CorrFine > r.CorrCoarse {
		fmt.Println("=> finer horizontal resolution wins, as in the paper's Fig. 7")
	} else {
		fmt.Println("=> WARNING: resolution ordering differs from the paper on this run")
	}
}
