// Climate: the paper's Fig. 8 experiment at reproduction scale — train
// the ML physics suite from coarse-grained storm-resolving output and
// compare its rainfall climatology against the conventional suite at two
// resolutions (the paper's G6-vs-G8 resolution-adaptivity claim).
//
//	go run ./examples/climate
package main

import (
	"fmt"

	"gristgo/internal/experiments"
)

func main() {
	fmt.Println("ML physics suite: training + online coupling (Fig. 8)")
	fmt.Println()
	cfg := experiments.DefaultFig8Config()
	fmt.Printf("Pipeline: G%d GSRM run -> coarse-grain to G%d -> residual Q1/Q2 -> train -> couple\n",
		cfg.FineLevel, cfg.CoarseLevel)
	fmt.Printf("(%d days, %d captures/day, %d epochs)\n\n", cfg.TrainDays, cfg.StepsPerDay, cfg.Train.Epochs)

	r := experiments.RunFig8(cfg)
	for _, row := range r.Rows() {
		fmt.Println(row)
	}
	fmt.Println()
	switch {
	case !r.Stable:
		fmt.Println("=> WARNING: the ML-coupled run was not stable on this configuration")
	case r.CorrTrainRes > 0.5 && r.CorrApplyRes > 0.5:
		fmt.Println("=> ML suite reproduces the conventional rainfall pattern at both")
		fmt.Println("   resolutions: the resolution-adaptive behavior of the paper's Fig. 8")
	default:
		fmt.Println("=> ML suite ran stably; pattern agreement is weaker than the paper's")
	}
}
