// Quickstart: build a small global model, initialize it from the
// synthetic climatology, run six simulated hours with the conventional
// physics suite, and print basic diagnostics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"gristgo/internal/core"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
)

func main() {
	const (
		level  = 4 // ~450 km cells: coarse, but the full model pipeline
		layers = 8
	)

	// 1. Build the model: icosahedral mesh, mixed-precision dycore,
	// tracer transport, conventional physics, slab land surface.
	mod := core.NewModel(core.Config{
		GridLevel: level,
		NLev:      layers,
		Mode:      precision.Mixed,
	}, physics.NewConventional(layers))
	fmt.Printf("G%d mesh: %d cells, %d edges, %d vertices\n",
		level, mod.Mesh.NCells, mod.Mesh.NEdges, mod.Mesh.NVerts)

	// 2. Initial conditions: July climate (Table 1, period 3) plus
	// synthetic orography.
	cl := synthclim.ForPeriod(synthclim.Table1()[2], 0)
	mod.InitializeClimate(cl)
	mod.SetTerrain(synthclim.Terrain)

	// 3. Run six hours.
	fmt.Println("Running 6 simulated hours...")
	mod.RunHours(6, cl.Season)

	// 4. Diagnostics.
	ps := mod.Engine.State().SurfacePressure()
	var minPs, maxPs, meanPs float64 = ps[0], ps[0], 0
	for _, p := range ps {
		if p < minPs {
			minPs = p
		}
		if p > maxPs {
			maxPs = p
		}
		meanPs += p
	}
	meanPs /= float64(len(ps))

	rain := mod.PrecipRate()
	var rainy int
	var maxRain float64
	for _, r := range rain {
		if r > 0.1 {
			rainy++
		}
		if r > maxRain {
			maxRain = r
		}
	}

	fmt.Printf("Surface pressure: min %.0f, mean %.0f, max %.0f Pa\n", minPs, meanPs, maxPs)
	fmt.Printf("Raining in %d of %d cells; max rate %.1f mm/day\n", rainy, mod.Mesh.NCells, maxRain)
	fmt.Printf("Global dry mass: %.4e kg\n", mod.Engine.State().GlobalDryMass())
}
