// Aquaplanet: the configuration of the paper artifact's demo case
// (demo-g6-aqua) at reproduction scale — an all-ocean planet with
// zonally symmetric SST, run with the conventional suite, reporting the
// zonal-mean precipitation profile (the ITCZ should appear as a tropical
// peak) and the per-component timing table the artifact's log prints.
//
//	go run ./examples/aquaplanet
package main

import (
	"fmt"

	"gristgo/internal/core"
	"gristgo/internal/diag"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
)

func main() {
	const (
		level  = 4
		layers = 8
		hours  = 24
	)
	fmt.Println("Aquaplanet (demo-g6-aqua analog): all ocean, zonally symmetric SST")
	mod := core.NewModel(core.Config{
		GridLevel: level, NLev: layers, Mode: precision.Mixed,
	}, physics.NewConventional(layers))

	cl := synthclim.ForPeriod(synthclim.Table1()[1], 0) // April: ITCZ near the equator
	mod.InitializeAquaplanet(cl)

	fmt.Printf("Running %d simulated hours on G%d (%d cells, %d layers)...\n",
		hours, level, mod.Mesh.NCells, layers)
	tm := core.NewTimings()
	_, _, _, dtPhy := mod.EffectiveSteps()
	steps := int(float64(hours) * 3600 / dtPhy)
	for i := 0; i < steps; i++ {
		mod.StepPhysicsTimed(cl.Season, tm)
	}

	rain := mod.PrecipRate()
	lat, zonal := diag.ZonalMean(mod.Mesh, rain, 18)
	fmt.Println("\nZonal-mean precipitation (mm/day):")
	fmt.Print(diag.ZonalProfileASCII(lat, zonal, 36, "mm/day"))

	fmt.Printf("\nGlobal mean precip: %.2f mm/day\n", diag.GlobalMean(mod.Mesh, rain))
	fmt.Println("\nPer-component timing (artifact-style log):")
	fmt.Print(tm.Report())
}
