// Ablation benchmarks for the design choices the paper motivates:
// the address-distributing allocator (§3.3.3), BFS index reordering
// (§3.1.3), mixed precision (§3.4), aggregated halo exchange (§3.1.3),
// and the ML suite's achieved-FLOPS advantage (§4.7). Each benchmark
// reports the with/without metrics side by side.
package main

import (
	"fmt"
	"testing"

	"gristgo/internal/comm"
	"gristgo/internal/dycore"
	"gristgo/internal/mesh"
	"gristgo/internal/partition"
	"gristgo/internal/perfmodel"
	"gristgo/internal/precision"
	"gristgo/internal/sunway"
)

// BenchmarkAblationDSTAllocator contrasts the many-array limiter kernel
// with and without the address-distributing pool allocator.
func BenchmarkAblationDSTAllocator(b *testing.B) {
	m := mesh.New(3)
	var limiter sunway.Kernel
	for _, k := range sunway.Kernels() {
		if k.Name == "tracer_transport_hori_flux_limiter" {
			limiter = k
		}
	}
	var plain, dst sunway.Stats
	for i := 0; i < b.N; i++ {
		plain, _ = limiter.Run(sunway.Variant{OnCPE: true}, m, 16)
		dst, _ = limiter.Run(sunway.Variant{OnCPE: true, Distribute: true}, m, 16)
	}
	b.ReportMetric(plain.HitRate(), "hit_rate_plain")
	b.ReportMetric(dst.HitRate(), "hit_rate_dst")
	b.ReportMetric(plain.Seconds/dst.Seconds, "dst_speedup")
}

// BenchmarkAblationBFSReordering contrasts the simulated LDCache hit
// rate of the indirect divergence kernel on the raw subdivision-ordered
// mesh vs the BFS-reordered mesh (§3.1.3's locality claim).
func BenchmarkAblationBFSReordering(b *testing.B) {
	raw := mesh.New(4)
	bfs := raw.ReorderBFS()
	var div sunway.Kernel
	for _, k := range sunway.Kernels() {
		if k.Name == "div_mass_flux" {
			div = k
		}
	}
	var sRaw, sBFS sunway.Stats
	for i := 0; i < b.N; i++ {
		sRaw, _ = div.Run(sunway.Variant{OnCPE: true, Distribute: true}, raw, 8)
		sBFS, _ = div.Run(sunway.Variant{OnCPE: true, Distribute: true}, bfs, 8)
	}
	b.ReportMetric(sRaw.HitRate(), "hit_rate_raw")
	b.ReportMetric(sBFS.HitRate(), "hit_rate_bfs")
	if sBFS.HitRate() < sRaw.HitRate() {
		b.Log("warning: BFS ordering did not improve the hit rate on this workload")
	}
}

// BenchmarkAblationMixedPrecision contrasts DP and MIX dycore speed in
// the machine model at the production point.
func BenchmarkAblationMixedPrecision(b *testing.B) {
	m := perfmodel.NewMachine()
	var dp, mx perfmodel.Result
	for i := 0; i < b.N; i++ {
		dp = m.Predict(perfmodel.RunConfig{Level: 12, Layers: 30, NCG: 524288,
			Scheme: perfmodel.Scheme{Mode: precision.DP, ML: true}})
		mx = m.Predict(perfmodel.RunConfig{Level: 12, Layers: 30, NCG: 524288,
			Scheme: perfmodel.Scheme{Mode: precision.Mixed, ML: true}})
	}
	b.ReportMetric(dp.SDPD, "SDPD_DP")
	b.ReportMetric(mx.SDPD, "SDPD_MIX")
	b.ReportMetric(mx.SDPD/dp.SDPD, "mix_speedup")
}

// BenchmarkAblationMLEfficiency sweeps the achieved-FLOPS fraction of
// the ML suite: the paper's 74-84% band vs a hypothetical RRTMG-like 6%
// shows why "more FLOPs but better efficiency" wins (§4.7).
func BenchmarkAblationMLEfficiency(b *testing.B) {
	var atPaper, atLow float64
	for i := 0; i < b.N; i++ {
		m := perfmodel.NewMachine()
		rc := perfmodel.RunConfig{Level: 12, Layers: 30, NCG: 524288,
			Scheme: perfmodel.Scheme{Mode: precision.Mixed, ML: true}}
		m.MLEff = 0.79
		atPaper = m.Predict(rc).SDPD
		m.MLEff = 0.06
		atLow = m.Predict(rc).SDPD
	}
	b.ReportMetric(atPaper, "SDPD_eff79")
	b.ReportMetric(atLow, "SDPD_eff06")
}

// BenchmarkAblationHaloAggregation measures the real wall-time of the
// linked-list aggregated halo exchange (all variables, one message per
// peer) against one exchange call per variable (§3.1.3).
func BenchmarkAblationHaloAggregation(b *testing.B) {
	m := mesh.New(4)
	const nparts = 4
	const nvars = 8
	d := partition.MustDecompose(m, nparts, 3)

	run := func(aggregated bool) {
		comm.Run(nparts, func(r *comm.Rank) {
			dom := comm.NewDomain(m, d, r.ID())
			fields := make([]*comm.Field, nvars)
			for i := range fields {
				fields[i] = dom.NewField("v", 4)
			}
			if aggregated {
				h := comm.NewHaloExchanger(dom, r)
				for _, f := range fields {
					h.Register(f)
				}
				h.Exchange()
			} else {
				for _, f := range fields {
					h := comm.NewHaloExchanger(dom, r)
					h.Register(f)
					h.Exchange()
				}
			}
		})
	}

	b.Run("aggregated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(true)
		}
	})
	b.Run("per-variable", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(false)
		}
	})
}

// BenchmarkDycoreStep measures the real Go cost of one HEVI step per
// precision mode on a G4 mesh (the reproduction's native performance,
// not the Sunway model's).
func BenchmarkDycoreStep(b *testing.B) {
	m := mesh.New(4).ReorderBFS()
	for _, mode := range []precision.Mode{precision.DP, precision.Mixed} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			eng := dycore.New(m, 10, mode)
			eng.State().InitIdealized(dycore.CaseBaroclinicWave)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step(120)
			}
			cells := float64(m.NCells * 10)
			b.ReportMetric(cells*float64(b.N)/b.Elapsed().Seconds(), "cell-levels/s")
		})
	}
}

// BenchmarkMeshGeneration measures mesh construction (including TRiSK
// weights) per level.
func BenchmarkMeshGeneration(b *testing.B) {
	for _, lvl := range []int{3, 4, 5} {
		lvl := lvl
		b.Run(mesh.Census(lvl).Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = mesh.New(lvl)
			}
		})
	}
}

// BenchmarkPartitioner measures the METIS-substitute on a G5 mesh.
func BenchmarkPartitioner(b *testing.B) {
	m := mesh.New(5)
	g := partition.FromMesh(m)
	var cut int64
	for i := 0; i < b.N; i++ {
		part := partition.KWay(g, 64, int64(i))
		cut = g.EdgeCut(part)
	}
	b.ReportMetric(float64(cut), "edge_cut_64way")
}

// BenchmarkHostParallelism measures the shared-memory speedup of the
// dycore step across worker counts (the host-side OpenMP analog).
func BenchmarkHostParallelism(b *testing.B) {
	m := mesh.New(5).ReorderBFS()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			eng := dycore.New(m, 10, precision.Mixed)
			eng.SetHostParallelism(workers)
			eng.State().InitIdealized(dycore.CaseBaroclinicWave)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Step(200)
			}
		})
	}
}
