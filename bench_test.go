// Repository-level benchmarks: one per table and figure of the paper's
// evaluation section (the per-experiment index is in DESIGN.md). Each
// benchmark regenerates its experiment and reports domain metrics through
// b.ReportMetric, so `go test -bench=. -benchmem` reproduces the paper's
// headline rows. Expensive model-integration experiments (Fig. 7, Fig. 8)
// run once per benchmark invocation regardless of b.N.
package main

import (
	"math"
	"math/rand"
	"testing"

	"gristgo/internal/experiments"
	"gristgo/internal/mesh"
	"gristgo/internal/mlphysics"
	"gristgo/internal/nn"
	"gristgo/internal/perfmodel"
	"gristgo/internal/physics"
	"gristgo/internal/precision"
	"gristgo/internal/synthclim"
)

// BenchmarkTable1TrainingData regenerates the Table 1 training periods
// and their climate indices.
func BenchmarkTable1TrainingData(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1Rows()
		if len(rows) != 5 {
			b.Fatal("Table 1 shape")
		}
	}
	b.ReportMetric(float64(synthclim.TotalDays()), "training_days")
	b.ReportMetric(4, "periods")
}

// BenchmarkTable2GridCensus regenerates the grid census, verifying the
// closed forms against a really generated mesh each iteration.
func BenchmarkTable2GridCensus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mesh.New(4)
		c := mesh.Census(4)
		if int64(m.NCells) != c.Cells {
			b.Fatal("census mismatch")
		}
	}
	g12 := mesh.Census(12)
	b.ReportMetric(float64(g12.Cells), "G12_cells")
	b.ReportMetric(float64(g12.Edges), "G12_edges")
}

// BenchmarkTable3Schemes enumerates the four scheme configurations.
func BenchmarkTable3Schemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table3Rows()) != 5 {
			b.Fatal("Table 3 shape")
		}
	}
	b.ReportMetric(4, "schemes")
}

// BenchmarkFig2Landscape regenerates the GSRM-efforts landscape,
// including this work's two model-predicted points.
func BenchmarkFig2Landscape(b *testing.B) {
	var ours []perfmodel.Effort
	for i := 0; i < b.N; i++ {
		ours = perfmodel.Fig2Ours(perfmodel.NewMachine())
	}
	b.ReportMetric(ours[0].SYPD, "SYPD_3km")
	b.ReportMetric(ours[1].SYPD, "SYPD_1km")
}

// BenchmarkFig7Doksuri runs the two-resolution Typhoon Doksuri case and
// reports the spatial correlations of Fig. 7. One full case per
// benchmark invocation (~2 minutes); run with -benchtime=1x.
func BenchmarkFig7Doksuri(b *testing.B) {
	if testing.Short() {
		b.Skip("model integration")
	}
	cfg := experiments.DefaultFig7Config()
	cfg.Hours = 6 // benchmark-sized
	var r experiments.Fig7Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig7(cfg)
		b.StopTimer()
		if r.CorrFine <= r.CorrCoarse {
			b.Logf("warning: fine member did not beat coarse (%.3f vs %.3f)", r.CorrFine, r.CorrCoarse)
		}
		b.StartTimer()
	}
	b.ReportMetric(r.CorrCoarse, "corr_coarse")
	b.ReportMetric(r.CorrFine, "corr_fine")
}

// BenchmarkFig8MLPhysics runs the ML-physics pipeline (train + coupled
// comparison) and reports the Fig. 8 metrics. Run with -benchtime=1x.
func BenchmarkFig8MLPhysics(b *testing.B) {
	if testing.Short() {
		b.Skip("training pipeline")
	}
	cfg := experiments.DefaultFig8Config()
	cfg.TrainDays = 1
	cfg.Train.Epochs = 15
	var r experiments.Fig8Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig8(cfg)
	}
	b.ReportMetric(r.TendTestLoss, "cnn_loss")
	b.ReportMetric(r.CorrTrainRes, "corr_train_res")
	b.ReportMetric(r.CorrApplyRes, "corr_transfer_res")
	if !r.Stable {
		b.Log("warning: ML-coupled run unstable in benchmark configuration")
	}
}

// benchMLSuite assembles an ML physics suite with randomly initialized
// (untrained) networks at the reproduction architecture — throughput
// does not depend on the weight values — and normalizers fitted to a
// small synthetic sample.
func benchMLSuite(nlev int) *mlphysics.Suite {
	rng := rand.New(rand.NewSource(42))
	randRows := func(n, dim int) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, dim)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		return rows
	}
	return &mlphysics.Suite{
		NLev:    nlev,
		Tend:    nn.NewResUnitCNN(mlphysics.TendencyChannels, 16, mlphysics.TendencyOutputs, nlev, 5, 3, rng),
		Rad:     nn.NewResMLP(2*nlev+2, 48, mlphysics.RadiationOutputs, 7, rng),
		TendIn:  mlphysics.NewNormalizer(randRows(64, mlphysics.TendencyChannels*nlev)),
		TendOut: mlphysics.NewNormalizer(randRows(64, mlphysics.TendencyOutputs*nlev)),
		RadIn:   mlphysics.NewNormalizer(randRows(64, 2*nlev+2)),
		RadOut:  mlphysics.NewNormalizer(randRows(64, mlphysics.RadiationOutputs)),
	}
}

// benchMLInput builds a G5-scale physics state (10242 columns).
func benchMLInput(ncol, nlev int) *physics.Input {
	in := physics.NewInput(ncol, nlev)
	for c := 0; c < ncol; c++ {
		for k := 0; k < nlev; k++ {
			i := c*nlev + k
			p := 22500 + float64(k)/float64(nlev-1)*75000
			in.P[i] = p
			in.Dpi[i] = 97750.0 / float64(nlev)
			in.T[i] = 295 - 55*math.Log(1e5/p)
			in.Qv[i] = 0.012 * math.Pow(p/1e5, 3)
			in.U[i] = 8 * math.Sin(float64(i))
			in.V[i] = 4 * math.Cos(float64(i))
		}
		in.Tskin[c] = 300
		in.CosZ[c] = math.Max(0, math.Sin(float64(c)*0.7))
	}
	return in
}

// BenchmarkMLInference compares the ML physics suite's inference paths
// at a G5-scale column count: the per-column scalar oracle, the batched
// FP64 engine (bit-identical to the oracle), and the batched FP32 engine
// (weights quantized at compile time). The headline metric is cols/sec;
// the ≥4x batched-FP64-over-scalar acceptance number in EXPERIMENTS.md
// comes from this benchmark with HostWorkers=4.
func BenchmarkMLInference(b *testing.B) {
	const ncol, nlev = 10242, 10 // G5 cells, reproduction layer count
	in := benchMLInput(ncol, nlev)
	out := physics.NewOutput(ncol, nlev)
	tskin0 := append([]float64(nil), in.Tskin...)

	run := func(b *testing.B, setup func(*mlphysics.Suite)) {
		suite := benchMLSuite(nlev)
		setup(suite)
		suite.Compute(in, out, 600) // warmup: plan compile, buffer sizing
		copy(in.Tskin, tskin0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			suite.Compute(in, out, 600)
			b.StopTimer()
			copy(in.Tskin, tskin0) // the surface slab advances Tskin
			b.StartTimer()
		}
		b.ReportMetric(float64(ncol)*float64(b.N)/b.Elapsed().Seconds(), "cols/sec")
	}

	b.Run("scalar", func(b *testing.B) {
		run(b, func(s *mlphysics.Suite) { s.SetScalarOracle(true) })
	})
	b.Run("batched-fp64", func(b *testing.B) {
		run(b, func(s *mlphysics.Suite) { s.SetWorkers(4) })
	})
	b.Run("batched-fp32", func(b *testing.B) {
		run(b, func(s *mlphysics.Suite) {
			s.SetWorkers(4)
			s.SetPrecision(precision.Mixed)
		})
	})
}

// BenchmarkFig9Kernels runs the CPE kernel study on the simulated
// SW26010P and reports the best speedups of the two kernels the paper
// discusses most.
func BenchmarkFig9Kernels(b *testing.B) {
	var r experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		r = experiments.RunFig9(3, 16)
	}
	for k, name := range r.Kernels {
		if name == "primal_normal_flux_edge" {
			b.ReportMetric(r.Speedup[k][len(r.Speedup[k])-1], "primal_flux_speedup")
		}
		if name == "calc_coriolis_term" {
			b.ReportMetric(r.Speedup[k][len(r.Speedup[k])-1], "coriolis_speedup")
		}
	}
}

// BenchmarkFig10WeakScaling evaluates the weak-scaling model and reports
// the paper's communication-share endpoints (19% -> 37%).
func BenchmarkFig10WeakScaling(b *testing.B) {
	m := perfmodel.NewMachine()
	var pts []perfmodel.ScalePoint
	for i := 0; i < b.N; i++ {
		pts = m.WeakScaling(perfmodel.Scheme{Mode: precision.Mixed, ML: true})
	}
	b.ReportMetric(100*pts[0].R.CommShare, "comm_pct_128")
	b.ReportMetric(100*pts[len(pts)-1].R.CommShare, "comm_pct_524288")
	b.ReportMetric(pts[len(pts)-1].EffPct, "weak_eff_pct")
}

// BenchmarkFig11StrongScaling evaluates the strong-scaling model and
// reports the paper's headline SDPD anchors (491 G11S / 181 G12).
func BenchmarkFig11StrongScaling(b *testing.B) {
	m := perfmodel.NewMachine()
	var g12, g11 perfmodel.Result
	for i := 0; i < b.N; i++ {
		s := perfmodel.Scheme{Mode: precision.Mixed, ML: true}
		g12 = m.Predict(perfmodel.RunConfig{Level: 12, Layers: 30, NCG: 524288, Scheme: s, Steps: perfmodel.G12Steps()})
		g11 = m.Predict(perfmodel.RunConfig{Level: 11, Layers: 30, NCG: 524288, Scheme: s, Steps: perfmodel.G11SSteps()})
	}
	b.ReportMetric(g12.SDPD, "G12_SDPD")
	b.ReportMetric(g11.SDPD, "G11S_SDPD")
	b.ReportMetric(g12.SYPD, "G12_SYPD")
}
